// Package calq is the calendar-queue event core shared by the DES
// engines: a Brown-style bucketed priority queue with O(1) amortized
// Enqueue/DequeueMin, deterministic FIFO ordering within exact-time
// ties, and a typed Event API — no interface{} boxing, so the per-event
// path stays inside the //lint:hotpath allocation-free contract.
//
// Layout.  Events hash into a power-of-two array of buckets by
// ⌊T/width⌋ & mask; the bucket array spans one "year" of nb·width
// simulated time, and later years wrap around.  Each bucket is kept
// sorted by dequeue priority with the minimum at the TAIL, so popping
// the bucket minimum is a constant-time truncation (and the vacated
// slot is zeroed, the same recycling discipline the heap Pop fix
// applies).  DequeueMin scans buckets from the cursor, bounded by each
// bucket's time window in the current year; if a full year passes
// without a hit (all events far in the future), a direct search over
// all bucket minima re-anchors the cursor.
//
// Tie-break contract.  Every Enqueue stamps a strictly increasing
// sequence number, and ordering is lexicographic on (T, seq): events
// with exactly equal timestamps dequeue in insertion order.  The
// comparison never uses float equality — ties fall through two
// strict < tests to the integer seq — which both satisfies the floateq
// lint contract and makes the order total and deterministic.  This
// strengthens the old container/heap order, which left exact-time ties
// unspecified; the fair-queueing finish-tag discipline (sort by
// (finish, seq)) is exactly this rule.
//
// Resizing.  The bucket count doubles when occupancy exceeds two
// events per bucket and halves when it falls under a quarter; each
// resize re-derives the bucket width deterministically from the
// observed event-time span (2·span/size, so average occupancy stays
// near one-half) — no sampling, no clocks, so a queue fed the same
// sequence of operations is always in the same state.
//
// Contract: timestamps must be finite and non-negative, and Dequeue
// order is total for any mix of operations (enqueues earlier than the
// last dequeued time re-anchor the cursor rather than being missed).
package calq

import "math"

// Event is one scheduled simulator event.  User, Token and Arr carry
// the engines' payload untouched; T is the event time and the hidden
// seq realizes the FIFO-within-tie contract.
// The field order and the int32 User pack the struct to 32 bytes — the
// arena is the queue's cache working set, and every byte of Event is
// multiplied by it.
type Event struct {
	// T is the event timestamp (finite, ≥ 0).
	T float64

	seq uint64 // insertion stamp; FIFO tie-break within equal T

	// Token validates completion events against preemption (engine
	// payload).
	Token int
	// User is the arrival's source index (engine payload; int32 holds
	// any realistic source population and keeps Event at 32 bytes).
	User int32
	// Arr distinguishes arrivals from completions (engine payload).
	Arr bool
}

// minBuckets floors the bucket array so the mask arithmetic and the
// shrink cascade always have room.
const minBuckets = 4

// bucketCap is the per-bucket capacity pre-carved out of a shared arena
// at Init/rehash time.  The resize policy keeps average occupancy
// around two events per bucket and cursor-local occupancy near three,
// so a Poisson-spread load overflows sixteen slots with negligible
// probability (~1e-8 per insert) — without the pre-carve, buckets would
// warm lazily through the guarded grow for the whole first calendar
// year and keep creeping past their high-water marks for many years
// after it, a steady allocation trickle the events/sec gate's
// two-horizon delta measures (and rejects).  Spare capacity is nearly
// free: only cache lines that hold live events are ever touched.
const bucketCap = 16

// newBuckets carves nb empty buckets of bucketCap capacity each out of
// a single arena allocation.  Three-index slicing caps every bucket at
// its own slot, so a bucket that outgrows it migrates to a private
// backing array via insert's guarded grow instead of clobbering its
// neighbor.
func newBuckets(nb int) [][]Event {
	arena := make([]Event, nb*bucketCap)
	buckets := make([][]Event, nb)
	for i := range buckets {
		buckets[i] = arena[i*bucketCap : i*bucketCap : (i+1)*bucketCap]
	}
	return buckets
}

// Queue is a calendar queue.  The zero value is not ready; call Init.
type Queue struct {
	buckets [][]Event
	mask    int     // len(buckets)-1; len is a power of two
	width   float64 // simulated-time span of one bucket
	size    int     // queued events
	seq     uint64  // last issued insertion stamp

	vcur  int64   // virtual bucket (⌊T/width⌋, unwrapped) the scan resumes at
	lastT float64 // floor of every queued event's T (monotone anchor)
}

// Init prepares the queue for a run: sizeHint is the expected steady
// population (the bucket count starts at the covering power of two) and
// widthHint the expected gap between successive minima (sanitized to 1
// when degenerate).  Init allocates; the per-event operations do not.
func (q *Queue) Init(sizeHint int, widthHint float64) {
	// Size the calendar at about two events per bucket rather than one:
	// the sorted-bucket insert absorbs the extra shift work inside a
	// cache line it touched anyway, while halving the bucket-header and
	// arena footprint — at 10⁵ events the queue's working set, where the
	// random-bucket insert misses live.
	nb := minBuckets
	for nb < (sizeHint+1)/2 {
		nb <<= 1
	}
	// Sanitize the hint: NaN/±Inf/non-positive fall back to 1, and the
	// extremes are clamped so ⌊T/width⌋ stays far inside float64's exact
	// integer range (the scan-window arithmetic multiplies it back).
	if !(widthHint > 0) || math.IsInf(widthHint, 0) {
		widthHint = 1
	}
	if widthHint < 1e-6 {
		widthHint = 1e-6
	} else if widthHint > 1e12 {
		widthHint = 1e12
	}
	q.buckets = newBuckets(nb)
	q.mask = nb - 1
	q.width = widthHint
	q.size = 0
	q.seq = 0
	q.vcur = 0
	q.lastT = 0
}

// Len is the number of queued events.
func (q *Queue) Len() int { return q.size }

// Enqueue schedules ev (its seq field is ignored and re-stamped) and
// returns the insertion stamp, which Remove accepts to cancel the event
// later.  Amortized O(1); the rare bucket-array resize lives here, off
// the hot inner path.
func (q *Queue) Enqueue(ev Event) uint64 {
	q.seq++
	ev.seq = q.seq
	if q.size == 0 || ev.T < q.lastT {
		// Keep lastT a true floor of the queued timestamps so the
		// year-scan's "everything is at or after the cursor" invariant
		// holds even for out-of-order schedules.
		q.lastT = ev.T
		q.resetCursor(ev.T)
	}
	if q.size+1 > 2*len(q.buckets) {
		q.rehash(2 * len(q.buckets))
	}
	q.insert(ev)
	return ev.seq
}

// DequeueMin removes and returns the earliest event (FIFO within exact
// ties); ok is false on an empty queue.
func (q *Queue) DequeueMin() (ev Event, ok bool) {
	if q.size == 0 {
		return Event{}, false
	}
	ev = q.popMin()
	if len(q.buckets) > minBuckets && q.size < len(q.buckets)/4 {
		q.rehash(len(q.buckets) / 2)
	}
	return ev, true
}

// Remove cancels the queued event with timestamp t and insertion stamp
// seq (as returned by Enqueue) and reports whether it was found.  The
// match is by the unique integer stamp — t only locates the bucket — so
// no float comparison is needed.
func (q *Queue) Remove(t float64, seq uint64) bool {
	if q.size == 0 {
		return false
	}
	return q.removeSeq(t, seq)
}

// eventBefore reports whether a dequeues before b: lexicographic on
// (T, seq) spelled as two strict < tests so exact-time ties resolve by
// insertion order without a float equality.
//
//lint:hotpath
func eventBefore(a, b Event) bool {
	if a.T < b.T {
		return true
	}
	if b.T < a.T {
		return false
	}
	return a.seq < b.seq
}

// bucketOf maps a timestamp to its bucket index under the current
// width.
//
//lint:hotpath
func (q *Queue) bucketOf(t float64) int {
	return int(int64(t/q.width)) & q.mask
}

// resetCursor re-anchors the dequeue scan at t's virtual bucket.
//
//lint:hotpath
func (q *Queue) resetCursor(t float64) {
	q.vcur = int64(t / q.width)
}

// insert places ev into its bucket, keeping the bucket sorted with the
// next-to-dequeue event at the tail.  The backing array grows through
// the guarded-grow idiom (no growing append), so the steady state —
// capacity already high-watered — runs allocation-free.
//
//lint:hotpath
func (q *Queue) insert(ev Event) {
	i := q.bucketOf(ev.T)
	b := q.buckets[i]
	n := len(b)
	if cap(b) < n+1 {
		grown := make([]Event, n, 2*n+4)
		copy(grown, b)
		b = grown
	}
	b = b[:n+1]
	j := n - 1
	for j >= 0 && eventBefore(b[j], ev) {
		b[j+1] = b[j]
		j--
	}
	b[j+1] = ev
	q.buckets[i] = b
	q.size++
}

// popMin runs the calendar scan: from the cursor's virtual bucket, each
// bucket's tail (its minimum) wins if its own virtual bucket number is
// at or before the scan position; a full fruitless year falls back to
// the direct search.  Callers guarantee size > 0.
//
// The membership test recomputes ⌊T/width⌋ — the SAME expression insert
// hashes with — rather than comparing T against a running time bound.
// An earlier version carried the window's upper bound as a float
// accumulator (top += width persisted across pops); its rounding drifts
// relative to the product ⌊T/width⌋·width as the clock grows, and once
// a boundary event failed the drifted comparison by one ulp its bucket
// was already behind the cursor, so the event waited a full calendar
// year to be seen again — in the DES engines a completion delayed a
// year stalls the server while arrivals pile up.  Deriving both sides
// from the identical division makes assignment and scan agree bit for
// bit at every boundary, at any clock magnitude.
//
//lint:hotpath
func (q *Queue) popMin() Event {
	v := q.vcur
	for k := 0; k <= q.mask; k++ {
		i := int(v) & q.mask
		b := q.buckets[i]
		if m := len(b) - 1; m >= 0 && int64(b[m].T/q.width) <= v {
			ev := b[m]
			b[m] = Event{} // recycle the slot zeroed
			q.buckets[i] = b[:m]
			q.size--
			q.vcur = v
			q.lastT = ev.T
			return ev
		}
		v++
	}
	return q.popDirect()
}

// popDirect finds the global minimum across all bucket tails — the
// fallback when every queued event lies beyond the scanned year — and
// re-anchors the cursor there.  Callers guarantee size > 0.
//
//lint:hotpath
func (q *Queue) popDirect() Event {
	best := -1
	for i := range q.buckets {
		m := len(q.buckets[i]) - 1
		if m < 0 {
			continue
		}
		if best < 0 || eventBefore(q.buckets[i][m], q.buckets[best][len(q.buckets[best])-1]) {
			best = i
		}
	}
	b := q.buckets[best]
	m := len(b) - 1
	ev := b[m]
	b[m] = Event{}
	q.buckets[best] = b[:m]
	q.size--
	q.lastT = ev.T
	q.resetCursor(ev.T)
	return ev
}

// removeSeq deletes the event with the given stamp from t's bucket,
// preserving the bucket order and zeroing the vacated tail slot.
//
//lint:hotpath
func (q *Queue) removeSeq(t float64, seq uint64) bool {
	i := q.bucketOf(t)
	b := q.buckets[i]
	for j := len(b) - 1; j >= 0; j-- {
		if b[j].seq == seq {
			copy(b[j:], b[j+1:])
			b[len(b)-1] = Event{}
			q.buckets[i] = b[:len(b)-1]
			q.size--
			return true
		}
	}
	return false
}

// rehash rebuilds the calendar at the new bucket count, re-deriving the
// width from the observed event-time span: width = 2·span/size keeps
// the average occupancy near one half.  Deterministic — the new state
// is a pure function of the queued events — and O(size), amortized
// against the size change that triggered it.
func (q *Queue) rehash(nb int) {
	if nb < minBuckets {
		nb = minBuckets
	}
	old := q.buckets
	minT, maxT := math.Inf(1), math.Inf(-1)
	for _, b := range old {
		for _, ev := range b {
			if ev.T < minT {
				minT = ev.T
			}
			if ev.T > maxT {
				maxT = ev.T
			}
		}
	}
	if q.size > 1 && maxT > minT {
		q.width = 2 * (maxT - minT) / float64(q.size)
	}
	// Keep virtual bucket numbers (⌊T/width⌋) well inside float64's
	// exact-integer range even when the span collapses: a width below
	// maxT/2^40 would make the cursor's year arithmetic inexact.
	if lo := maxT / float64(int64(1)<<40); maxT > 0 && q.width < lo {
		q.width = lo
	}
	q.buckets = newBuckets(nb)
	q.mask = nb - 1
	q.size = 0
	for _, b := range old {
		for _, ev := range b {
			q.insert(ev)
		}
	}
	q.resetCursor(q.lastT)
}
