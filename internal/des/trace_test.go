package des

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestTracerCollectsDepartures(t *testing.T) {
	tr := NewTracer(0)
	res, err := Run(Config{
		Rates:       []float64{0.2, 0.3},
		Discipline:  &FIFO{},
		Horizon:     2e4,
		Seed:        41,
		OnDeparture: tr.Observe,
	})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(tr.Records)) != res.Departures {
		t.Errorf("trace has %d records, simulator reported %d departures",
			len(tr.Records), res.Departures)
	}
	// Records are in departure order with positive delays.
	prev := 0.0
	for _, r := range tr.Records {
		if r.Depart < prev {
			t.Fatal("departure order violated")
		}
		if r.Delay() <= 0 {
			t.Fatalf("nonpositive delay %v", r.Delay())
		}
		prev = r.Depart
	}
	// Mean traced delay must agree with the simulator's own statistic.
	sum := map[int]float64{}
	cnt := map[int]int{}
	for _, r := range tr.Records {
		sum[r.User] += r.Delay()
		cnt[r.User]++
	}
	for u := 0; u < 2; u++ {
		mean := sum[u] / float64(cnt[u])
		if math.Abs(mean-res.AvgDelay[u]) > 1e-9 {
			t.Errorf("user %d traced mean delay %v, simulator %v", u, mean, res.AvgDelay[u])
		}
	}
}

func TestTracerCapacity(t *testing.T) {
	tr := NewTracer(5)
	for i := 0; i < 8; i++ {
		tr.Observe(Packet{User: 0, Arrive: float64(i)}, float64(i)+1)
	}
	if len(tr.Records) != 5 || tr.Dropped != 3 {
		t.Errorf("records=%d dropped=%d", len(tr.Records), tr.Dropped)
	}
	if !strings.Contains(tr.String(), "dropped=3") {
		t.Errorf("String() = %q", tr.String())
	}
}

func TestTracerCSV(t *testing.T) {
	tr := NewTracer(10)
	tr.Observe(Packet{User: 1, Class: 2, Arrive: 0.5}, 1.25)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV lines %d", len(lines))
	}
	if lines[1] != "1,2,0.5,1.25,0.75" {
		t.Errorf("row = %q", lines[1])
	}
}

func TestDelayPercentiles(t *testing.T) {
	tr := NewTracer(10)
	for i, d := range []float64{5, 1, 3, 2, 4} {
		tr.Observe(Packet{User: 0, Arrive: float64(i)}, float64(i)+d)
	}
	ps := tr.DelayPercentiles(0, 0, 50, 100)
	if ps[0] != 1 || ps[1] != 3 || ps[2] != 5 {
		t.Errorf("percentiles = %v", ps)
	}
	missing := tr.DelayPercentiles(7, 50)
	if !math.IsNaN(missing[0]) {
		t.Errorf("missing user percentile should be NaN: %v", missing)
	}
}

func TestTracedTailDelaysFSvsFIFO(t *testing.T) {
	// The tracer enables a claim the mean can't show: under Fair Share a
	// light user's TAIL delay is also insulated from a heavy sender.
	rates := []float64{0.1, 0.75}
	run := func(d Discipline) *Tracer {
		tr := NewTracer(200000)
		_, err := Run(Config{
			Rates:       rates,
			Discipline:  d,
			Horizon:     2e5,
			Seed:        42,
			OnDeparture: tr.Observe,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	fifo := run(&FIFO{})
	fs := run(&FairShareSplitter{})
	p99FIFO := fifo.DelayPercentiles(0, 99)[0]
	p99FS := fs.DelayPercentiles(0, 99)[0]
	if p99FS >= 0.7*p99FIFO {
		t.Errorf("FS should cut the light user's p99 delay: %v vs %v", p99FS, p99FIFO)
	}
}
