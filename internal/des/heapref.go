package des

import (
	"container/heap"
	"math"

	"greednet/internal/randdist"
	"greednet/internal/stats"
)

// Frozen container/heap reference engines.  RunGHeap and RunSchedHeap
// are the pre-calendar-queue event loops, kept verbatim (boxing heap,
// allocating deque, fresh packet per arrival) for two jobs: the
// differential suite pins the calendar-queue engines against them bit
// for bit, and greedbench -events reports the calendar queue's
// events/sec as a ratio over them.  They take no context — baselines
// are run to completion on small horizons — and must not be used by
// experiments.

// gevent is a scheduled event in the heap reference engines.
type gevent struct {
	t     float64
	user  int  // arrival: which user; completion: unused
	token int  // completion: validity token
	isArr bool // arrival vs completion
}

type geventHeap []gevent

func (h geventHeap) Len() int            { return len(h) }
func (h geventHeap) Less(i, j int) bool  { return h[i].t < h[j].t }
func (h geventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *geventHeap) Push(x interface{}) { *h = append(*h, x.(gevent)) }
func (h *geventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = gevent{} // zero the vacated tail slot: no stale event lingers in the backing array
	*h = old[:n-1]
	return x
}

// refDeque is the historical double-ended packet queue: pushFront
// allocates a fresh slice per call.  Kept only so the reference
// engines' allocation profile stays the measured baseline.
type refDeque struct {
	items []*gpacket
}

func (d *refDeque) pushBack(p *gpacket)  { d.items = append(d.items, p) }
func (d *refDeque) pushFront(p *gpacket) { d.items = append([]*gpacket{p}, d.items...) }
func (d *refDeque) popFront() *gpacket {
	p := d.items[0]
	d.items = d.items[1:]
	return p
}
func (d *refDeque) len() int { return len(d.items) }

// RunGHeap is the frozen heap-based general-service engine; see the
// package comment above.  Semantics (and, for continuous event times,
// results) match RunG exactly.
func RunGHeap(cfg GConfig) (Result, error) {
	n := len(cfg.Rates)
	if n == 0 {
		return Result{}, ErrBadConfig
	}
	total := 0.0
	for _, r := range cfg.Rates {
		if r <= 0 || math.IsNaN(r) {
			return Result{}, ErrBadConfig
		}
		total += r
	}
	if total >= 1 {
		return Result{}, ErrBadConfig
	}
	if !validSpan(cfg.Horizon) || !validSpan(cfg.Warmup) {
		return Result{}, ErrBadConfig
	}
	if cfg.Service == nil {
		cfg.Service = randdist.Exponential{}
	}
	if cfg.Classify == nil {
		cfg.Classify = SingleClass{}
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 2e5
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = 0.05 * cfg.Horizon
	}
	if cfg.Batches <= 0 {
		cfg.Batches = 20
	}

	rng := randdist.NewRand(cfg.Seed)
	cfg.Classify.Reset(cfg.Rates, rng)
	classes := make([]refDeque, cfg.Classify.NumClasses())

	end := cfg.Warmup + cfg.Horizon
	batchLen := cfg.Horizon / float64(cfg.Batches)

	lq := newLazyQueues(n, cfg.Batches, cfg.Warmup, end, batchLen)
	var totalAvg stats.TimeAverage
	delaySum := make([]float64, n)
	departed := make([]int64, n)
	var res Result
	res.AvgQueue = make([]float64, n)
	res.QueueCI95 = make([]float64, n)
	res.AvgDelay = make([]float64, n)
	res.Throughput = make([]float64, n)

	var events geventHeap
	for i, r := range cfg.Rates {
		heap.Push(&events, gevent{t: rng.ExpFloat64() / r, user: i, isArr: true})
	}
	var serving *gpacket
	servingToken := 0
	tokenSeq := 0
	inSystem := 0
	prev := 0.0

	startService := func(p *gpacket, now float64) {
		serving = p
		tokenSeq++
		servingToken = tokenSeq
		heap.Push(&events, gevent{t: now + p.remaining, token: servingToken})
	}
	nextFromQueues := func(now float64) {
		serving = nil
		for c := range classes {
			if classes[c].len() > 0 {
				startService(classes[c].popFront(), now)
				return
			}
		}
	}

	for events.Len() > 0 {
		ev := heap.Pop(&events).(gevent)
		now := ev.t
		if now > end {
			now = end
		}
		if now > cfg.Warmup && now > prev {
			lo := math.Max(prev, cfg.Warmup)
			span := now - lo
			if span > 0 {
				totalAvg.Accumulate(float64(inSystem), span)
			}
		}
		prev = now
		if ev.t > end {
			break
		}
		if ev.isArr {
			u := ev.user
			heap.Push(&events, gevent{t: ev.t + rng.ExpFloat64()/cfg.Rates[u], user: u, isArr: true})
			p := &gpacket{
				user:      u,
				class:     cfg.Classify.Classify(u),
				arrive:    ev.t,
				remaining: cfg.Service.Sample(rng),
			}
			lq.bump(u, ev.t, 1)
			inSystem++
			if ev.t >= cfg.Warmup {
				res.Arrivals++
			}
			switch {
			case serving == nil:
				startService(p, ev.t)
			case p.class < serving.class:
				preempted := serving
				preempted.remaining = heapPreemptRemaining(&events, servingToken, ev.t)
				servingToken = -1
				classes[preempted.class].pushFront(preempted)
				startService(p, ev.t)
			default:
				classes[p.class].pushBack(p)
			}
		} else {
			if ev.token != servingToken || serving == nil {
				continue
			}
			p := serving
			lq.bump(p.user, ev.t, -1)
			inSystem--
			if ev.t >= cfg.Warmup {
				res.Departures++
				departed[p.user]++
				delaySum[p.user] += ev.t - p.arrive
			}
			nextFromQueues(ev.t)
		}
	}

	lq.finish()

	res.Duration = cfg.Horizon
	for i := 0; i < n; i++ {
		res.AvgQueue[i] = lq.avgQueue(i)
		res.QueueCI95[i] = batchCI(lq.batchRow(i), batchLen)
		if departed[i] > 0 {
			res.AvgDelay[i] = delaySum[i] / float64(departed[i])
		} else {
			res.AvgDelay[i] = math.NaN()
		}
		res.Throughput[i] = float64(departed[i]) / cfg.Horizon
	}
	res.TotalAvgQueue = totalAvg.Value()
	return res, nil
}

// heapPreemptRemaining removes the pending completion with the given
// token from the heap and returns its residual service time relative
// to now — the historical O(heap) preemption scan.
func heapPreemptRemaining(events *geventHeap, token int, now float64) float64 {
	for i, ev := range *events {
		if !ev.isArr && ev.token == token {
			rem := ev.t - now
			heap.Remove(events, i)
			if rem < 0 {
				rem = 0
			}
			return rem
		}
	}
	return 0
}

// RunSchedHeap is the frozen heap-based non-preemptive scheduler
// engine; see the package comment above.
func RunSchedHeap(cfg SchedConfig) (Result, error) {
	n := len(cfg.Rates)
	if n == 0 {
		return Result{}, ErrBadConfig
	}
	total := 0.0
	for _, r := range cfg.Rates {
		if r <= 0 || math.IsNaN(r) {
			return Result{}, ErrBadConfig
		}
		total += r
	}
	if total >= 1 {
		return Result{}, ErrBadConfig
	}
	if !validSpan(cfg.Horizon) || !validSpan(cfg.Warmup) {
		return Result{}, ErrBadConfig
	}
	if cfg.Service == nil {
		cfg.Service = randdist.Exponential{}
	}
	if cfg.Sched == nil {
		cfg.Sched = &FCFSSched{}
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 2e5
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = 0.05 * cfg.Horizon
	}
	if cfg.Batches <= 0 {
		cfg.Batches = 20
	}

	rng := randdist.NewRand(cfg.Seed)
	cfg.Sched.Reset(cfg.Rates)

	end := cfg.Warmup + cfg.Horizon
	batchLen := cfg.Horizon / float64(cfg.Batches)
	lq := newLazyQueues(n, cfg.Batches, cfg.Warmup, end, batchLen)
	var totalAvg stats.TimeAverage
	delaySum := make([]float64, n)
	departed := make([]int64, n)
	var res Result
	res.AvgQueue = make([]float64, n)
	res.QueueCI95 = make([]float64, n)
	res.AvgDelay = make([]float64, n)
	res.Throughput = make([]float64, n)

	var events geventHeap
	for i, r := range cfg.Rates {
		heap.Push(&events, gevent{t: rng.ExpFloat64() / r, user: i, isArr: true})
	}
	var serving *gpacket
	inSystem := 0
	prev := 0.0

	for events.Len() > 0 {
		ev := heap.Pop(&events).(gevent)
		now := ev.t
		if now > end {
			now = end
		}
		if now > cfg.Warmup && now > prev {
			lo := math.Max(prev, cfg.Warmup)
			span := now - lo
			if span > 0 {
				totalAvg.Accumulate(float64(inSystem), span)
			}
		}
		prev = now
		if ev.t > end {
			break
		}
		if ev.isArr {
			u := ev.user
			heap.Push(&events, gevent{t: ev.t + rng.ExpFloat64()/cfg.Rates[u], user: u, isArr: true})
			p := &gpacket{user: u, arrive: ev.t, remaining: cfg.Service.Sample(rng)}
			lq.bump(u, ev.t, 1)
			inSystem++
			if ev.t >= cfg.Warmup {
				res.Arrivals++
			}
			if serving == nil {
				serving = p
				heap.Push(&events, gevent{t: ev.t + p.remaining})
			} else {
				cfg.Sched.Enqueue(p, ev.t)
			}
		} else {
			if serving == nil {
				continue
			}
			p := serving
			lq.bump(p.user, ev.t, -1)
			inSystem--
			if ev.t >= cfg.Warmup {
				res.Departures++
				departed[p.user]++
				delaySum[p.user] += ev.t - p.arrive
			}
			serving = nil
			if cfg.Sched.Len() > 0 {
				serving = cfg.Sched.Dequeue(ev.t)
				heap.Push(&events, gevent{t: ev.t + serving.remaining})
			}
		}
	}

	lq.finish()

	res.Duration = cfg.Horizon
	for i := 0; i < n; i++ {
		res.AvgQueue[i] = lq.avgQueue(i)
		res.QueueCI95[i] = batchCI(lq.batchRow(i), batchLen)
		if departed[i] > 0 {
			res.AvgDelay[i] = delaySum[i] / float64(departed[i])
		} else {
			res.AvgDelay[i] = math.NaN()
		}
		res.Throughput[i] = float64(departed[i]) / cfg.Horizon
	}
	res.TotalAvgQueue = totalAvg.Value()
	return res, nil
}
