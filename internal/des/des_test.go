package des

import (
	"math"
	"testing"

	"greednet/internal/alloc"
	"greednet/internal/mm1"
)

// closeToCI fails unless |got − want| ≤ max(5·ci, abs).
func closeToCI(t *testing.T, label string, got, want, ci, abs float64) {
	t.Helper()
	tol := math.Max(5*ci, abs)
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %v, want %v (±%v)", label, got, want, tol)
	}
}

var testRates = []float64{0.10, 0.15, 0.20, 0.25}

func runDES(t *testing.T, d Discipline, rates []float64, horizon float64, seed int64) Result {
	t.Helper()
	res, err := Run(Config{Rates: rates, Discipline: d, Horizon: horizon, Seed: seed})
	if err != nil {
		t.Fatalf("Run(%s): %v", d.Name(), err)
	}
	return res
}

func TestTotalQueueMatchesMM1AllDisciplines(t *testing.T) {
	// Work conservation: total average queue = g(Σr) for every discipline.
	want := mm1.G(mm1.Sum(testRates))
	for _, d := range []Discipline{
		&FIFO{}, &LIFOPreemptive{}, &ProcessorSharing{},
		&HOLProcessorSharing{}, &RatePriority{}, &FairShareSplitter{},
	} {
		res := runDES(t, d, testRates, 2e5, 1)
		if math.Abs(res.TotalAvgQueue-want) > 0.08*want {
			t.Errorf("%s: total queue %v, want %v", d.Name(), res.TotalAvgQueue, want)
		}
	}
}

func TestClassBlindDisciplinesAreProportional(t *testing.T) {
	// FIFO, LIFO-preemptive, and PS all realize C_i = r_i/(1−s).
	want := alloc.Proportional{}.Congestion(testRates)
	for _, d := range []Discipline{&FIFO{}, &LIFOPreemptive{}, &ProcessorSharing{}} {
		res := runDES(t, d, testRates, 3e5, 2)
		for i := range testRates {
			closeToCI(t, d.Name()+" c_"+string(rune('0'+i)), res.AvgQueue[i], want[i], res.QueueCI95[i], 0.02)
		}
	}
}

func TestFairShareSplitterMatchesTable1(t *testing.T) {
	// The paper's Table 1 construction must reproduce C^FS.
	want := alloc.FairShare{}.Congestion(testRates)
	res := runDES(t, &FairShareSplitter{}, testRates, 4e5, 3)
	for i := range testRates {
		closeToCI(t, "fs c_"+string(rune('0'+i)), res.AvgQueue[i], want[i], res.QueueCI95[i], 0.02)
	}
}

func TestRatePriorityMatchesHOLFormula(t *testing.T) {
	want := alloc.HOLPriority{Order: alloc.SmallestFirst}.Congestion(testRates)
	res := runDES(t, &RatePriority{}, testRates, 3e5, 4)
	for i := range testRates {
		closeToCI(t, "hol c_"+string(rune('0'+i)), res.AvgQueue[i], want[i], res.QueueCI95[i], 0.02)
	}
}

func TestLittlesLaw(t *testing.T) {
	// c_i = λ_i · d_i for each user, any discipline.
	for _, d := range []Discipline{&FIFO{}, &FairShareSplitter{}, &HOLProcessorSharing{}} {
		res := runDES(t, d, testRates, 2e5, 5)
		for i, r := range testRates {
			if math.IsNaN(res.AvgDelay[i]) {
				t.Fatalf("%s: no departures for user %d", d.Name(), i)
			}
			pred := r * res.AvgDelay[i]
			if math.Abs(pred-res.AvgQueue[i]) > 0.08*(res.AvgQueue[i]+0.05) {
				t.Errorf("%s: Little's law broken for user %d: λd=%v, c=%v",
					d.Name(), i, pred, res.AvgQueue[i])
			}
		}
	}
}

func TestThroughputMatchesOfferedLoad(t *testing.T) {
	res := runDES(t, &FIFO{}, testRates, 2e5, 6)
	for i, r := range testRates {
		if math.Abs(res.Throughput[i]-r) > 0.05*r {
			t.Errorf("throughput[%d] = %v, want %v", i, res.Throughput[i], r)
		}
	}
}

func TestHOLPSCongestionOrdering(t *testing.T) {
	// Under HOL-PS lighter senders see (weakly) less congestion; heavy
	// senders carry the backlog.  Qualitative FQ property.
	res := runDES(t, &HOLProcessorSharing{}, testRates, 3e5, 7)
	for i := 1; i < len(testRates); i++ {
		if res.AvgQueue[i] < res.AvgQueue[i-1]-0.05 {
			t.Errorf("HOL-PS congestion not increasing with rate: %v", res.AvgQueue)
		}
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a := runDES(t, &FIFO{}, testRates, 1e4, 42)
	b := runDES(t, &FIFO{}, testRates, 1e4, 42)
	for i := range a.AvgQueue {
		if a.AvgQueue[i] != b.AvgQueue[i] {
			t.Fatal("same seed should reproduce identical results")
		}
	}
	c := runDES(t, &FIFO{}, testRates, 1e4, 43)
	same := true
	for i := range a.AvgQueue {
		if a.AvgQueue[i] != c.AvgQueue[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestRunRejectsBadConfigs(t *testing.T) {
	if _, err := Run(Config{Rates: nil, Discipline: &FIFO{}}); err == nil {
		t.Error("empty rates should error")
	}
	if _, err := Run(Config{Rates: []float64{0.6, 0.6}, Discipline: &FIFO{}}); err == nil {
		t.Error("overload should error")
	}
	if _, err := Run(Config{Rates: []float64{-0.1, 0.2}, Discipline: &FIFO{}}); err == nil {
		t.Error("negative rate should error")
	}
	if _, err := Run(Config{Rates: []float64{0.2}, Discipline: nil}); err == nil {
		t.Error("nil discipline should error")
	}
}

func TestBatchCIsArePlausible(t *testing.T) {
	res := runDES(t, &FIFO{}, testRates, 2e5, 8)
	for i := range testRates {
		if math.IsNaN(res.QueueCI95[i]) || res.QueueCI95[i] <= 0 {
			t.Errorf("CI[%d] = %v", i, res.QueueCI95[i])
		}
		if res.QueueCI95[i] > res.AvgQueue[i] {
			t.Errorf("CI[%d] = %v implausibly wide vs mean %v", i, res.QueueCI95[i], res.AvgQueue[i])
		}
	}
}

func TestFIFOQueueCompaction(t *testing.T) {
	var q fifoQueue
	for i := 0; i < 1000; i++ {
		q.push(Packet{User: i})
		if i%2 == 0 {
			p := q.pop()
			_ = p
		}
	}
	if q.len() != 500 {
		t.Errorf("queue length %d, want 500", q.len())
	}
	// Drain and verify FIFO order of the remainder.
	prev := -1
	for q.len() > 0 {
		p := q.pop()
		if p.User <= prev {
			t.Fatal("FIFO order violated")
		}
		prev = p.User
	}
}

func TestFairShareSplitterTwoUsersInsulation(t *testing.T) {
	// The light user's queue under FS should be near g(2r)/2 even when the
	// heavy user is pushing the switch close to saturation.
	rates := []float64{0.1, 0.85}
	want := alloc.FairShare{}.Congestion(rates)
	res := runDES(t, &FairShareSplitter{}, rates, 4e5, 9)
	closeToCI(t, "light user", res.AvgQueue[0], want[0], res.QueueCI95[0], 0.02)
	// FIFO, by contrast, drags the light user far above that.
	resF := runDES(t, &FIFO{}, rates, 4e5, 9)
	if resF.AvgQueue[0] < 3*want[0] {
		t.Errorf("FIFO should hurt the light user: got %v vs FS ideal %v",
			resF.AvgQueue[0], want[0])
	}
}

func TestCyclicPollingBehavesLikeHOLPS(t *testing.T) {
	// Deterministic cyclic visits and random uniform visits give backlogged
	// users the same long-run service shares, so per-user mean queues agree.
	poll := runDES(t, &CyclicPolling{}, testRates, 3e5, 10)
	hol := runDES(t, &HOLProcessorSharing{}, testRates, 3e5, 10)
	for i := range testRates {
		tol := 5*(poll.QueueCI95[i]+hol.QueueCI95[i]) + 0.02
		if math.Abs(poll.AvgQueue[i]-hol.AvgQueue[i]) > tol {
			t.Errorf("user %d: polling %v vs HOL-PS %v (±%v)",
				i, poll.AvgQueue[i], hol.AvgQueue[i], tol)
		}
	}
	// Work conservation still holds.
	want := mm1.G(mm1.Sum(testRates))
	if math.Abs(poll.TotalAvgQueue-want) > 0.08*want {
		t.Errorf("polling total %v, want %v", poll.TotalAvgQueue, want)
	}
}

func TestCyclicPollingInsulatesLightUser(t *testing.T) {
	rates := []float64{0.1, 0.8}
	poll := runDES(t, &CyclicPolling{}, rates, 3e5, 11)
	fifo := runDES(t, &FIFO{}, rates, 3e5, 11)
	if poll.AvgQueue[0] > 0.5*fifo.AvgQueue[0] {
		t.Errorf("polling should insulate the light user: %v vs FIFO %v",
			poll.AvgQueue[0], fifo.AvgQueue[0])
	}
}
