package learnauto

import (
	"math"
	"math/rand"
	"testing"

	"greednet/internal/alloc"
	"greednet/internal/utility"
)

func TestAutomataConvergeUnderNoise(t *testing.T) {
	// The automata only ever see noisy payoffs in practice; with zero-mean
	// observation noise they must still concentrate near the Nash rate.
	n := 2
	gamma := 0.25
	us := utility.Identical(utility.NewLinear(1, gamma), n)
	base := AnalyticPayoff(alloc.FairShare{}, us)
	noise := rand.New(rand.NewSource(11))
	payoff := func(r []float64, i int) float64 {
		v := base(r, i)
		if math.IsInf(v, 0) {
			return v
		}
		return v + 0.02*noise.NormFloat64()
	}
	res := Run(payoff, n, Options{Seed: 12, Rounds: 16000, LearnRate: 0.03})
	want := (1 - math.Sqrt(gamma)) / float64(n)
	gridStep := res.Grid[1] - res.Grid[0]
	for i, m := range res.Modal {
		if math.Abs(m-want) > 2*gridStep {
			t.Errorf("noisy automaton %d modal %v, want ≈%v", i, m, want)
		}
	}
}

func TestAutomataMeanTracksModal(t *testing.T) {
	us := utility.Identical(utility.NewLinear(1, 0.25), 2)
	res := Run(AnalyticPayoff(alloc.FairShare{}, us), 2, Options{Seed: 13, Rounds: 12000})
	means := res.Mean()
	for i := range means {
		if math.Abs(means[i]-res.Modal[i]) > 0.1 {
			t.Errorf("automaton %d mean %v far from modal %v", i, means[i], res.Modal[i])
		}
	}
}
