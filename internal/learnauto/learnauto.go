// Package learnauto implements the distributed learning automata of the
// paper's reference [8] (Friedman & Shenker, "Learning by Distributed
// Automata"): each user maintains a probability distribution over a finite
// set of candidate rates, samples a rate each round, observes only its own
// (possibly noisy) payoff, and nudges the distribution toward actions that
// paid off — the linear reward–inaction (L_R-I) scheme.  No user knows the
// game, the switch, or the other users.  Under the Fair Share discipline
// these automata concentrate on the (discretized) Nash equilibrium.
package learnauto

import (
	"math"
	"math/rand"

	"greednet/internal/core"
	"greednet/internal/randdist"
)

// PayoffFunc returns user i's payoff when the full action profile (actual
// rates) is r.  Implementations may be the analytic allocation or a noisy
// simulation measurement.
type PayoffFunc func(r []core.Rate, i int) float64

// AnalyticPayoff builds a PayoffFunc from an allocation and a profile.
func AnalyticPayoff(a core.Allocation, us core.Profile) PayoffFunc {
	return func(r []core.Rate, i int) float64 {
		return us[i].Value(r[i], a.CongestionOf(r, i))
	}
}

// Options configures the automata run.
type Options struct {
	// Actions is the number of candidate rates per user; default 12.
	Actions int
	// Lo and Hi bound the candidate grid; defaults 0.02 and 0.6.
	Lo, Hi float64
	// LearnRate is the L_R-I reward step in (0, 1); default 0.05.
	LearnRate float64
	// Rounds is the number of play rounds; default 4000.
	Rounds int
	// Seed seeds the action sampling.
	Seed int64
	// Window is the payoff normalization window: rewards are rescaled to
	// [0, 1] using a running min/max estimate; default 200 rounds warmup.
	Window int
}

func (o Options) withDefaults() Options {
	if o.Actions <= 0 {
		o.Actions = 12
	}
	if o.Lo <= 0 {
		o.Lo = 0.02
	}
	if o.Hi <= 0 {
		o.Hi = 0.6
	}
	if o.LearnRate <= 0 || o.LearnRate >= 1 {
		o.LearnRate = 0.05
	}
	if o.Rounds <= 0 {
		o.Rounds = 4000
	}
	if o.Window <= 0 {
		o.Window = 200
	}
	return o
}

// Result reports the automata run.
type Result struct {
	// Grid is the shared candidate-rate grid.
	Grid []float64
	// Probs is each user's final action distribution.
	Probs [][]float64
	// Modal is each user's most probable rate.
	Modal []float64
	// ModalMass is the probability of the modal action per user.
	ModalMass []float64
	// Rounds is the number of rounds played.
	Rounds int
}

// Run plays n automata against each other through the payoff function.
func Run(payoff PayoffFunc, n int, opt Options) Result {
	opt = opt.withDefaults()
	rng := randdist.NewRand(opt.Seed)
	grid := make([]float64, opt.Actions)
	for k := range grid {
		grid[k] = opt.Lo + (opt.Hi-opt.Lo)*float64(k)/float64(opt.Actions-1)
	}
	probs := make([][]float64, n)
	for i := range probs {
		probs[i] = make([]float64, opt.Actions)
		for k := range probs[i] {
			probs[i][k] = 1 / float64(opt.Actions)
		}
	}
	// Reinforcement-comparison normalization: each user tracks an
	// exponential moving baseline of its payoffs and a moving scale of
	// deviations; the reward is the positive excess over the baseline.
	// This is robust to the unbounded negatives congested switches
	// produce, which would crush a min/max normalization.
	baseline := make([]float64, n)
	scale := make([]float64, n)
	init := make([]bool, n)
	const ema = 0.03
	acts := make([]int, n)
	r := make([]float64, n)
	for round := 0; round < opt.Rounds; round++ {
		for i := 0; i < n; i++ {
			acts[i] = sample(rng, probs[i])
			r[i] = grid[acts[i]]
		}
		for i := 0; i < n; i++ {
			u := payoff(r, i)
			if math.IsNaN(u) {
				continue
			}
			if math.IsInf(u, -1) {
				// Catastrophic outcome: treat as far below baseline (no
				// reward, so inaction), but do not poison the statistics.
				continue
			}
			if !init[i] {
				baseline[i] = u
				scale[i] = 1e-9
				init[i] = true
				continue
			}
			dev := math.Abs(u - baseline[i])
			scale[i] += ema * (dev - scale[i])
			excess := u - baseline[i]
			baseline[i] += ema * excess
			if round < opt.Window || excess <= 0 || scale[i] <= 0 {
				continue
			}
			reward := excess / (4 * scale[i])
			if reward > 1 {
				reward = 1
			}
			// L_R-I update: move probability mass toward the played
			// action in proportion to the normalized reward.
			step := opt.LearnRate * reward
			pa := probs[i]
			for k := range pa {
				if k == acts[i] {
					pa[k] += step * (1 - pa[k])
				} else {
					pa[k] -= step * pa[k]
				}
			}
		}
	}
	res := Result{Grid: grid, Probs: probs, Rounds: opt.Rounds}
	res.Modal = make([]float64, n)
	res.ModalMass = make([]float64, n)
	for i := range probs {
		best := 0
		for k := range probs[i] {
			if probs[i][k] > probs[i][best] {
				best = k
			}
		}
		res.Modal[i] = grid[best]
		res.ModalMass[i] = probs[i][best]
	}
	return res
}

// sample draws an index from the distribution p.
func sample(rng *rand.Rand, p []float64) int {
	x := rng.Float64()
	acc := 0.0
	for k, v := range p {
		acc += v
		if x < acc {
			return k
		}
	}
	return len(p) - 1
}

// Mean returns each user's distribution-mean rate (a smoother summary
// than the mode).
func (r Result) Mean() []float64 {
	out := make([]float64, len(r.Probs))
	for i, p := range r.Probs {
		for k, v := range p {
			out[i] += v * r.Grid[k]
		}
	}
	return out
}
