package learnauto

import (
	"math"
	"testing"

	"greednet/internal/alloc"
	"greednet/internal/utility"
)

func TestAutomataConvergeFairShare(t *testing.T) {
	// Three identical automata over a Fair Share switch concentrate near
	// the (discretized) Nash rate (1−√γ)/N.
	n := 3
	gamma := 0.25
	us := utility.Identical(utility.NewLinear(1, gamma), n)
	want := (1 - math.Sqrt(gamma)) / float64(n) // 1/6
	res := Run(AnalyticPayoff(alloc.FairShare{}, us), n, Options{
		Seed:   1,
		Rounds: 12000,
	})
	gridStep := res.Grid[1] - res.Grid[0]
	for i, m := range res.Modal {
		if math.Abs(m-want) > 1.5*gridStep {
			t.Errorf("automaton %d modal rate %v, want ≈%v (grid step %v)", i, m, want, gridStep)
		}
	}
}

func TestAutomataConcentrate(t *testing.T) {
	n := 2
	us := utility.Identical(utility.NewLinear(1, 0.25), n)
	res := Run(AnalyticPayoff(alloc.FairShare{}, us), n, Options{Seed: 2, Rounds: 12000})
	for i, mass := range res.ModalMass {
		if mass < 0.5 {
			t.Errorf("automaton %d modal mass %v, want concentration > 0.5", i, mass)
		}
	}
}

func TestProbabilitiesRemainSimplex(t *testing.T) {
	n := 3
	us := utility.Identical(utility.NewLinear(1, 0.3), n)
	res := Run(AnalyticPayoff(alloc.FairShare{}, us), n, Options{Seed: 3, Rounds: 2000})
	for i, p := range res.Probs {
		sum := 0.0
		for _, v := range p {
			if v < -1e-12 || v > 1+1e-12 {
				t.Fatalf("automaton %d has invalid probability %v", i, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("automaton %d distribution sums to %v", i, sum)
		}
	}
}

func TestMeanSummary(t *testing.T) {
	res := Result{
		Grid:  []float64{0.1, 0.2},
		Probs: [][]float64{{0.25, 0.75}},
	}
	m := res.Mean()
	if math.Abs(m[0]-0.175) > 1e-12 {
		t.Errorf("Mean = %v, want 0.175", m)
	}
}

func TestInfinitePayoffsHandled(t *testing.T) {
	// A payoff function that returns −Inf outside a narrow band must not
	// corrupt the distributions.
	payoff := func(r []float64, i int) float64 {
		if r[i] > 0.3 {
			return math.Inf(-1)
		}
		return -math.Abs(r[i] - 0.2)
	}
	res := Run(payoff, 2, Options{Seed: 4, Rounds: 6000})
	for i, m := range res.Modal {
		if m > 0.3 {
			t.Errorf("automaton %d settled in the −Inf region at %v", i, m)
		}
		if math.Abs(m-0.2) > 0.08 {
			t.Errorf("automaton %d modal %v, want ≈0.2", i, m)
		}
	}
}
