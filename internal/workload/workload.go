// Package workload builds the user populations the experiments and tools
// run against: the paper's motivating scenarios (bulk-vs-interactive
// traffic, a flooding attacker among naive users, homogeneous commons) and
// seeded random populations drawn from the admissible utility families.
package workload

import (
	"fmt"
	"strconv"
	"strings"

	"greednet/internal/core"
	"greednet/internal/randdist"
	"greednet/internal/utility"
)

// Scenario is a ready-to-solve user population.
type Scenario struct {
	// Name identifies the scenario.
	Name string
	// Users holds one utility per user.
	Users core.Profile
	// Start is a reasonable starting rate vector.
	Start []float64
	// Free marks which users self-optimize; nil means all.
	Free []bool
	// Labels describes each user for display.
	Labels []string
}

// Symmetric builds n identical linear users U = r − γc — the homogeneous
// commons of §4.2.3.
func Symmetric(n int, gamma float64) Scenario {
	s := Scenario{
		Name:   fmt.Sprintf("symmetric(n=%d, γ=%g)", n, gamma),
		Users:  utility.Identical(utility.NewLinear(1, gamma), n),
		Start:  make([]float64, n),
		Labels: make([]string, n),
	}
	for i := range s.Start {
		s.Start[i] = 0.5 / float64(n)
		s.Labels[i] = fmt.Sprintf("user-%d", i)
	}
	return s
}

// FTPTelnet builds the §5.2 mix: two greedy bulk flows and two fixed light
// interactive flows.
func FTPTelnet() Scenario {
	return Scenario{
		Name: "ftp-telnet",
		Users: core.Profile{
			utility.NewLinear(1, 0.06),
			utility.NewLinear(1, 0.10),
			utility.NewLinear(1, 0.50),
			utility.NewLinear(1, 0.50),
		},
		Start:  []float64{0.1, 0.1, 0.01, 0.01},
		Free:   []bool{true, true, false, false},
		Labels: []string{"ftp-1", "ftp-2", "telnet-1", "telnet-2"},
	}
}

// Cheater builds the protection scenario: naive fixed-rate victims facing
// one greedy optimizer with near-zero congestion aversion.
func Cheater(victims int, victimRate float64) Scenario {
	n := victims + 1
	s := Scenario{
		Name:   fmt.Sprintf("cheater(victims=%d)", victims),
		Users:  make(core.Profile, n),
		Start:  make([]float64, n),
		Free:   make([]bool, n),
		Labels: make([]string, n),
	}
	for i := 0; i < victims; i++ {
		s.Users[i] = utility.NewLinear(1, 0.5)
		s.Start[i] = victimRate
		s.Labels[i] = fmt.Sprintf("victim-%d", i)
	}
	s.Users[victims] = utility.NewLinear(1, 0.02)
	s.Start[victims] = 0.3
	s.Free[victims] = true
	s.Labels[victims] = "attacker"
	return s
}

// Mixed builds a heterogeneous population across the utility families.
func Mixed() Scenario {
	return Scenario{
		Name: "mixed",
		Users: core.Profile{
			utility.NewLinear(1, 0.2),
			utility.Log{W: 0.3, Gamma: 1},
			utility.Sqrt{W: 1, Gamma: 2},
			utility.Power{A: 1, Gamma: 0.8, P: 1.4},
		},
		Start:  []float64{0.1, 0.1, 0.1, 0.1},
		Labels: []string{"linear", "log", "sqrt", "power"},
	}
}

// Random draws a seeded random population of n users.
func Random(n int, seed int64) Scenario {
	rng := randdist.NewRand(seed)
	s := Scenario{
		Name:   fmt.Sprintf("random(n=%d, seed=%d)", n, seed),
		Users:  utility.RandomProfile(rng, n),
		Start:  make([]float64, n),
		Labels: make([]string, n),
	}
	for i := range s.Start {
		s.Start[i] = 0.02 + 0.3*rng.Float64()/float64(n)
		s.Labels[i] = fmt.Sprintf("%v", s.Users[i])
	}
	return s
}

// Parse resolves a scenario spec:
//
//	symmetric:N,GAMMA | ftptelnet | cheater:VICTIMS,RATE | mixed | random:N,SEED
func Parse(spec string) (Scenario, error) {
	name, argstr, _ := strings.Cut(strings.TrimSpace(spec), ":")
	args := strings.Split(argstr, ",")
	num := func(k int) (float64, error) {
		if k >= len(args) {
			return 0, fmt.Errorf("workload: %s needs %d args", name, k+1)
		}
		return strconv.ParseFloat(strings.TrimSpace(args[k]), 64)
	}
	switch strings.ToLower(name) {
	case "symmetric":
		n, err := num(0)
		if err != nil {
			return Scenario{}, err
		}
		g, err := num(1)
		if err != nil {
			return Scenario{}, err
		}
		if n < 1 {
			return Scenario{}, fmt.Errorf("workload: need n ≥ 1")
		}
		return Symmetric(int(n), g), nil
	case "ftptelnet":
		return FTPTelnet(), nil
	case "cheater":
		v, err := num(0)
		if err != nil {
			return Scenario{}, err
		}
		r, err := num(1)
		if err != nil {
			return Scenario{}, err
		}
		if v < 1 || r <= 0 {
			return Scenario{}, fmt.Errorf("workload: cheater needs victims ≥ 1 and rate > 0")
		}
		return Cheater(int(v), r), nil
	case "mixed":
		return Mixed(), nil
	case "random":
		n, err := num(0)
		if err != nil {
			return Scenario{}, err
		}
		seed, err := num(1)
		if err != nil {
			return Scenario{}, err
		}
		if n < 1 {
			return Scenario{}, fmt.Errorf("workload: need n ≥ 1")
		}
		return Random(int(n), int64(seed)), nil
	default:
		return Scenario{}, fmt.Errorf("workload: unknown scenario %q", name)
	}
}
