package workload

import (
	"testing"

	"greednet/internal/alloc"
	"greednet/internal/game"
)

func TestSymmetric(t *testing.T) {
	s := Symmetric(4, 0.25)
	if len(s.Users) != 4 || len(s.Start) != 4 || len(s.Labels) != 4 {
		t.Fatalf("bad shape: %+v", s)
	}
	if s.Free != nil {
		t.Error("symmetric users should all optimize")
	}
}

func TestFTPTelnetShape(t *testing.T) {
	s := FTPTelnet()
	if len(s.Users) != 4 || !s.Free[0] || s.Free[2] {
		t.Fatalf("bad ftp-telnet scenario: %+v", s.Free)
	}
}

func TestCheater(t *testing.T) {
	s := Cheater(2, 0.1)
	if len(s.Users) != 3 {
		t.Fatal("cheater should have victims+1 users")
	}
	if s.Free[0] || !s.Free[2] {
		t.Error("only the attacker optimizes")
	}
	if s.Labels[2] != "attacker" {
		t.Error("attacker label missing")
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(3, 7)
	b := Random(3, 7)
	for i := range a.Start {
		if a.Start[i] != b.Start[i] {
			t.Fatal("same seed must reproduce")
		}
	}
}

func TestParse(t *testing.T) {
	cases := []string{"symmetric:3,0.25", "ftptelnet", "cheater:2,0.1", "mixed", "random:4,9"}
	for _, spec := range cases {
		if _, err := Parse(spec); err != nil {
			t.Errorf("Parse(%q): %v", spec, err)
		}
	}
	for _, bad := range []string{"", "nope", "symmetric:0,0.2", "symmetric:3", "cheater:0,0.1", "random:2"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestScenariosSolve(t *testing.T) {
	// Every canned scenario must admit a converged FS Nash solve.
	for _, s := range []Scenario{Symmetric(3, 0.25), FTPTelnet(), Cheater(2, 0.1), Mixed(), Random(3, 5)} {
		res, err := game.SolveNash(alloc.FairShare{}, s.Users, s.Start,
			game.NashOptions{Free: s.Free})
		if err != nil || !res.Converged {
			t.Errorf("%s: FS solve failed (%v)", s.Name, err)
		}
	}
}
