package alloc

import (
	"math"
	"math/rand"
	"testing"

	"greednet/internal/core"
	"greednet/internal/mm1"
	"greednet/internal/numeric"
)

func TestSerialGMM1MatchesFairShare(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	s := SerialG{Model: mm1.MM1{}}
	fs := FairShare{}
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(5)
		r := randomRates(rng, n, 0.9)
		a := s.Congestion(r)
		b := fs.Congestion(r)
		for i := range r {
			if math.Abs(a[i]-b[i]) > 1e-12 {
				t.Fatalf("trial %d: SerialG(MM1) differs from FairShare at %d: %v vs %v",
					trial, i, a[i], b[i])
			}
		}
	}
}

func TestProportionalGMM1MatchesProportional(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	p := ProportionalG{Model: mm1.MM1{}}
	q := Proportional{}
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(5)
		r := randomRates(rng, n, 0.9)
		a := p.Congestion(r)
		b := q.Congestion(r)
		for i := range r {
			if math.Abs(a[i]-b[i]) > 1e-12 {
				t.Fatalf("trial %d: mismatch at %d: %v vs %v", trial, i, a[i], b[i])
			}
		}
	}
}

func TestMG1ModelDerivativesMatchFD(t *testing.T) {
	for _, m := range []mm1.ServerModel{mm1.MM1{}, mm1.MD1(), mm1.MG1{CV2: 2.5}} {
		for _, x := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
			fd1 := numeric.Derivative(m.L, x, 1e-7)
			if math.Abs(fd1-m.LPrime(x)) > 1e-4*(1+m.LPrime(x)) {
				t.Errorf("%s L'(%v) = %v, FD %v", m.Name(), x, m.LPrime(x), fd1)
			}
			fd2 := numeric.Derivative(m.LPrime, x, 1e-7)
			if math.Abs(fd2-m.LPrime2(x)) > 1e-4*(1+m.LPrime2(x)) {
				t.Errorf("%s L''(%v) = %v, FD %v", m.Name(), x, m.LPrime2(x), fd2)
			}
		}
	}
}

func TestMG1ConvexIncreasing(t *testing.T) {
	// Footnote 5's requirement: L strictly increasing and strictly convex.
	for _, m := range []mm1.ServerModel{mm1.MD1(), mm1.MG1{CV2: 1}, mm1.MG1{CV2: 4}} {
		for x := 0.01; x < 0.99; x += 0.01 {
			if m.LPrime(x) <= 0 {
				t.Fatalf("%s not increasing at %v", m.Name(), x)
			}
			if m.LPrime2(x) <= 0 {
				t.Fatalf("%s not convex at %v", m.Name(), x)
			}
		}
		if !math.IsInf(m.L(1), 1) {
			t.Errorf("%s should saturate at x=1", m.Name())
		}
	}
}

func TestMG1CV2OneMatchesMM1Mean(t *testing.T) {
	m := mm1.MG1{CV2: 1}
	for _, x := range []float64{0.1, 0.5, 0.8} {
		if math.Abs(m.L(x)-mm1.G(x)) > 1e-12 {
			t.Errorf("MG1(cv2=1).L(%v) = %v, want g = %v", x, m.L(x), mm1.G(x))
		}
	}
}

func TestSerialGOwnDerivsMatchFD(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for _, model := range []mm1.ServerModel{mm1.MD1(), mm1.MG1{CV2: 2}} {
		s := SerialG{Model: model}
		for trial := 0; trial < 30; trial++ {
			n := 2 + rng.Intn(3)
			r := randomRates(rng, n, 0.7)
			sortSeparate(r, 5e-3)
			for i := range r {
				d1, d2 := s.OwnDerivs(r, i)
				f := func(x float64) float64 {
					return s.CongestionOf(core.WithRate(r, i, x), i)
				}
				fd1 := numeric.Derivative(f, r[i], 1e-7)
				fd2 := numeric.SecondDerivative(f, r[i], 1e-4)
				if math.Abs(d1-fd1) > 1e-4*(1+math.Abs(d1)) {
					t.Fatalf("%s d1 mismatch: %v vs %v", s.Name(), d1, fd1)
				}
				if math.Abs(d2-fd2) > 1e-2*(1+math.Abs(d2)) {
					t.Fatalf("%s d2 mismatch: %v vs %v", s.Name(), d2, fd2)
				}
			}
		}
	}
}

func TestProportionalGOwnDerivsMatchFD(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for _, model := range []mm1.ServerModel{mm1.MD1(), mm1.MG1{CV2: 2}} {
		p := ProportionalG{Model: model}
		for trial := 0; trial < 30; trial++ {
			n := 2 + rng.Intn(3)
			r := randomRates(rng, n, 0.8)
			for i := range r {
				d1, d2 := p.OwnDerivs(r, i)
				f := func(x float64) float64 {
					return p.CongestionOf(core.WithRate(r, i, x), i)
				}
				fd1 := numeric.Derivative(f, r[i], 1e-7)
				fd2 := numeric.SecondDerivative(f, r[i], 1e-4)
				if math.Abs(d1-fd1) > 1e-4*(1+math.Abs(d1)) {
					t.Fatalf("%s d1 mismatch: %v vs %v", p.Name(), d1, fd1)
				}
				if math.Abs(d2-fd2) > 1e-2*(1+math.Abs(d2)) {
					t.Fatalf("%s d2 mismatch: %v vs %v", p.Name(), d2, fd2)
				}
			}
		}
	}
}

func TestSerialGFeasibleAndProtective(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for _, model := range []mm1.ServerModel{mm1.MD1(), mm1.MG1{CV2: 3}} {
		s := SerialG{Model: model}
		for trial := 0; trial < 150; trial++ {
			n := 2 + rng.Intn(4)
			// Feasibility inside the stable region.
			r := randomRates(rng, n, 0.9)
			c := s.Congestion(r)
			if rep := mm1.CheckFeasibleG(model, r, c, 1e-7); !rep.Feasible {
				t.Fatalf("%s infeasible at %v: %+v", s.Name(), r, rep)
			}
			// Protectiveness even under overload by others.
			ro := make([]float64, n)
			for i := range ro {
				ro[i] = 0.01 + 1.2*rng.Float64()
			}
			co := s.Congestion(ro)
			for i := range ro {
				bound := mm1.SymmetricCongestionG(model, n, ro[i])
				if co[i] > bound*(1+1e-12)+1e-12 {
					t.Fatalf("%s violates generalized protection: C=%v bound=%v",
						s.Name(), co[i], bound)
				}
			}
		}
	}
}

func TestSerialGInsulationTriangularity(t *testing.T) {
	// The partial-insulation structure survives the model change: bumping
	// a larger sender's rate leaves a smaller sender's congestion fixed.
	s := SerialG{Model: mm1.MG1{CV2: 2}}
	r := []float64{0.1, 0.3, 0.4}
	base := s.Congestion(r)
	bumped := s.Congestion([]float64{0.1, 0.3, 0.49})
	if math.Abs(base[0]-bumped[0]) > 1e-12 || math.Abs(base[1]-bumped[1]) > 1e-12 {
		t.Errorf("smaller senders should be insulated: %v vs %v", base, bumped)
	}
	if bumped[2] <= base[2] {
		t.Error("the grower should pay for its own growth")
	}
}
