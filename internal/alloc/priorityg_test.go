package alloc

import (
	"math"
	"math/rand"
	"testing"

	"greednet/internal/mm1"
)

func TestTablePriorityGExponentialEqualsFairShare(t *testing.T) {
	// With cv² = 1 the construction realizes Fair Share exactly.
	rng := rand.New(rand.NewSource(70))
	tp := TablePriorityG{Model: mm1.MG1{CV2: 1}}
	fs := FairShare{}
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(5)
		r := randomRates(rng, n, 0.9)
		a := tp.Congestion(r)
		b := fs.Congestion(r)
		for i := range r {
			if math.Abs(a[i]-b[i]) > 1e-10*(1+b[i]) {
				t.Fatalf("trial %d user %d: table %v vs FS %v at r=%v", trial, i, a[i], b[i], r)
			}
		}
	}
}

func TestHOLPriorityGExponentialEqualsHOL(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	hg := HOLPriorityG{Model: mm1.MG1{CV2: 1}}
	h := HOLPriority{Order: SmallestFirst}
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(4)
		r := randomRates(rng, n, 0.9)
		sortSeparate(r, 1e-6) // HOLPriority tie-groups differ from per-user classes
		a := hg.Congestion(r)
		b := h.Congestion(r)
		for i := range r {
			if math.Abs(a[i]-b[i]) > 1e-9*(1+b[i]) {
				t.Fatalf("trial %d user %d: %v vs %v at r=%v", trial, i, a[i], b[i], r)
			}
		}
	}
}

func TestTablePriorityGDriftFromSerialIdeal(t *testing.T) {
	// For cv² ≠ 1 the realization drifts from the serial ideal: equal at
	// cv²=1, above it for the big senders when service is more variable.
	r := []float64{0.1, 0.15, 0.2, 0.25}
	for _, cv2 := range []float64{0, 0.5, 2, 4} {
		tp := TablePriorityG{Model: mm1.MG1{CV2: cv2}}.Congestion(r)
		sg := SerialG{Model: mm1.MG1{CV2: cv2}}.Congestion(r)
		if cv2 == 1 {
			continue
		}
		// The smallest sender's class-1 queue still matches the isolated
		// station at x_1 = N·r_1 only for exponential service; drift must
		// be modest (< 30%) but generally nonzero for the tail.
		diff := math.Abs(tp[3]-sg[3]) / sg[3]
		if diff > 0.3 {
			t.Errorf("cv²=%v: drift %.3f implausibly large (table %v vs serial %v)",
				cv2, diff, tp[3], sg[3])
		}
	}
	// Totals always match the M/G/1 station (work conservation of the
	// number-in-system under a fixed internal discipline is not implied;
	// but the priority construction's own total must equal Σλ_m·T_m).
	cv2 := 2.0
	tp := TablePriorityG{Model: mm1.MG1{CV2: cv2}}
	c := tp.Congestion(r)
	total := 0.0
	for _, v := range c {
		total += v
	}
	if total <= 0 {
		t.Error("total queue should be positive")
	}
}

func TestTablePriorityGTies(t *testing.T) {
	tp := TablePriorityG{Model: mm1.MG1{CV2: 2}}
	c := tp.Congestion([]float64{0.2, 0.1, 0.2})
	if math.Abs(c[0]-c[2]) > 1e-12 {
		t.Errorf("tied users should be equal: %v", c)
	}
	if c[1] >= c[0] {
		t.Errorf("smaller sender should see less congestion: %v", c)
	}
}

func TestTablePriorityGOverload(t *testing.T) {
	tp := TablePriorityG{Model: mm1.MG1{CV2: 2}}
	c := tp.Congestion([]float64{0.05, 0.9, 0.9})
	if math.IsInf(c[0], 1) {
		t.Error("small sender should stay finite (insulation)")
	}
	if !math.IsInf(c[1], 1) || !math.IsInf(c[2], 1) {
		t.Errorf("flooders should be +Inf: %v", c)
	}
}

func TestHOLPriorityGInsulation(t *testing.T) {
	hg := HOLPriorityG{Model: mm1.MG1{CV2: 0}}
	base := hg.Congestion([]float64{0.1, 0.3})
	bumped := hg.Congestion([]float64{0.1, 0.6})
	if math.Abs(base[0]-bumped[0]) > 1e-12 {
		t.Errorf("high-priority user should be insulated: %v vs %v", base[0], bumped[0])
	}
}
