package alloc

import (
	"math"

	"greednet/internal/core"
	"greednet/internal/mm1"
)

// FairShareBR is a reusable evaluator of one user's Fair Share congestion
// as that user's rate varies with the other N−1 rates held fixed — the
// exact access pattern of a best-response line search, which probes ~64
// grid points plus a golden-section tail at every call.
//
// The serial cost shares have a structure the generic evaluator wastes:
// with the others stably sorted ascending, every prefix position m that
// precedes user i's insertion point has load x_m = (N−m+1)·o_m + σ_{m−1}
// and cost share increments that do not depend on i's rate at all (the
// multiplier uses the total N, not the insertion point).  Reset therefore
// sorts the others and precomputes the prefix sums σ, the g(x_m) chain,
// and the accumulated cost C through each prefix position once in
// O(N log N); each CongestionOf(x) then finds i's insertion point by
// binary search and finishes with O(1) arithmetic — O(log N) per probe
// instead of O(N log N) sort + O(N) vector work, with zero allocations
// after the first Reset at a given N.
//
// Bit-identity: the stable sort permutation of a key vector is unique, the
// insertion point reproduces it (ties break by original index, exactly as
// sort stability orders them), and σ/g/C accumulate in the same order with
// the same expressions as FairShare.CongestionInto, so CongestionOf(x) and
// OwnDerivs(x) equal FairShare{}.CongestionOf(r|ⁱx, i) and
// FairShare{}.OwnDerivs(r|ⁱx, i) bit for bit.  The differential fuzz tests
// pin this.
type FairShareBR struct {
	n int // total number of users, including i
	i int // the varying user's original index

	keys    []float64 // scratch: others' rates in original-index order
	others  []float64 // others' rates, stably sorted ascending
	origIdx []int     // original user index of each sorted other

	// sigma[k] = sum of the first k sorted others, accumulated in sorted
	// order (so sigma[k−1] is the σ_{k−1} a full evaluation would hold on
	// reaching position k with user i inserted there).  Filled for every
	// k even past the flood point: OwnDerivs needs the prefix regardless.
	sigma []float64
	// gx[m−1] = g(x_m) and cacc[m−1] = C accumulated through prefix
	// position m, for the others-only prefix chain; valid for m < flood.
	gx   []float64
	cacc []float64
	// flood is the first 1-based prefix position whose load saturates
	// (g = +Inf) in the others-only chain; len(others)+1 when none does.
	// User i inserting at position k > flood is behind a flooded sender
	// and receives +Inf without evaluation.
	flood int

	ws core.Workspace
}

// Reset prepares the evaluator for user i of rate vector r.  O(N log N);
// allocation-free once the internal buffers have reached len(r)'s size.
// The rates of the other users are copied, so r is not retained.
//
//lint:hotpath
func (b *FairShareBR) Reset(r []core.Rate, i int) {
	n := len(r)
	m := n - 1
	b.n, b.i = n, i
	if cap(b.keys) < m {
		b.keys = make([]float64, m)
		b.others = make([]float64, m)
		b.origIdx = make([]int, m)
		b.gx = make([]float64, m)
		b.cacc = make([]float64, m)
	}
	if cap(b.sigma) < m+1 {
		b.sigma = make([]float64, m+1)
	}
	b.keys = b.keys[:m]
	b.others = b.others[:m]
	b.origIdx = b.origIdx[:m]
	b.gx = b.gx[:m]
	b.cacc = b.cacc[:m]
	b.sigma = b.sigma[:m+1]

	for j := 0; j < i; j++ {
		b.keys[j] = r[j]
	}
	for j := i + 1; j < n; j++ {
		b.keys[j-1] = r[j]
	}
	// Stable argsort of the others: ties keep original-index order, which
	// is exactly how a stable sort of the full vector orders them.
	perm := b.ws.Ascending(b.keys)
	for k, p := range perm {
		b.others[k] = b.keys[p]
		if p < i {
			b.origIdx[k] = p
		} else {
			b.origIdx[k] = p + 1
		}
	}

	b.sigma[0] = 0
	prefix := 0.0
	for k := 1; k <= m; k++ {
		prefix += b.others[k-1]
		b.sigma[k] = prefix
	}

	b.flood = m + 1
	prevG := 0.0
	c := 0.0
	for k := 1; k <= m; k++ {
		xk := float64(n-k+1)*b.others[k-1] + b.sigma[k-1]
		gk := mm1.G(xk)
		if math.IsInf(gk, 1) {
			b.flood = k
			break
		}
		c += (gk - prevG) / float64(n-k+1)
		b.gx[k-1] = gk
		b.cacc[k-1] = c
		prevG = gk
	}
}

// precedes reports whether the j-th sorted other comes before user i in
// the stable ascending order of the full vector when i sends x.  Ties
// break by original index — sort stability — written as two < comparisons
// so no raw float equality is needed.  The predicate is monotone in j
// (true then false), which is what makes it binary-searchable.
func (b *FairShareBR) precedes(j int, x float64) bool {
	o := b.others[j]
	if o < x {
		return true
	}
	if x < o {
		return false
	}
	return b.origIdx[j] < b.i
}

// position returns user i's 1-based insertion position in the full stable
// ascending order when i sends x, by binary search over the sorted others.
func (b *FairShareBR) position(x float64) int {
	lo, hi := 0, b.n-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b.precedes(mid, x) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// CongestionOf returns user i's Fair Share congestion when i sends x and
// the others hold their Reset rates — bit-identical to
// FairShare{}.CongestionOf(r|ⁱx, i), in O(log N) with zero allocations.
//
//lint:hotpath
func (b *FairShareBR) CongestionOf(x core.Rate) core.Congestion {
	k := b.position(x)
	if k > b.flood {
		// A sender before i already saturated the prefix chain.
		return math.Inf(1)
	}
	xk := float64(b.n-k+1)*x + b.sigma[k-1]
	gk := mm1.G(xk)
	if math.IsInf(gk, 1) {
		return math.Inf(1)
	}
	prevG, prevC := 0.0, 0.0
	if k >= 2 {
		prevG, prevC = b.gx[k-2], b.cacc[k-2]
	}
	return prevC + (gk-prevG)/float64(b.n-k+1)
}

// OwnDerivs returns (∂C_i/∂r_i, ∂²C_i/∂r_i²) at r|ⁱx — bit-identical to
// FairShare{}.OwnDerivs(r|ⁱx, i), in O(log N) with zero allocations.
//
//lint:hotpath
func (b *FairShareBR) OwnDerivs(x core.Rate) (float64, float64) {
	k := b.position(x)
	xk := float64(b.n-k+1)*x + b.sigma[k-1]
	return mm1.GPrime(xk), float64(b.n-k+1) * mm1.GPrime2(xk)
}
