package alloc

import (
	"math"
	"math/rand"
	"testing"

	"greednet/internal/core"
	"greednet/internal/mm1"
	"greednet/internal/numeric"
)

// randomRates draws n rates with total load in (0.1, maxLoad).
func randomRates(rng *rand.Rand, n int, maxLoad float64) []float64 {
	r := make([]float64, n)
	total := 0.1 + (maxLoad-0.1)*rng.Float64()
	sum := 0.0
	for i := range r {
		r[i] = rng.Float64() + 0.01
		sum += r[i]
	}
	for i := range r {
		r[i] *= total / sum
	}
	return r
}

// sortSeparate nudges rates apart so every pairwise gap is at least minGap,
// keeping finite-difference stencils away from Fair Share's C¹-only tie
// hypersurfaces.  Order of users is preserved by value rank, not index.
func sortSeparate(r []float64, minGap float64) {
	for pass := 0; pass < len(r); pass++ {
		for a := 0; a < len(r)-1; a++ {
			for b := a + 1; b < len(r); b++ {
				if math.Abs(r[a]-r[b]) < minGap {
					if r[a] <= r[b] {
						r[b] = r[a] + minGap
					} else {
						r[a] = r[b] + minGap
					}
				}
			}
		}
	}
}

// allDisciplines returns the M/M/1-feasible allocations under test.
func allDisciplines() []core.Allocation {
	return []core.Allocation{
		Proportional{},
		FairShare{},
		HOLPriority{Order: SmallestFirst},
		HOLPriority{Order: LargestFirst},
		Blend{Theta: 0.3},
		Blend{Theta: 0.7},
	}
}

func TestProportionalKnownValues(t *testing.T) {
	r := []float64{0.1, 0.2, 0.3} // s = 0.6
	c := Proportional{}.Congestion(r)
	want := []float64{0.25, 0.5, 0.75}
	for i := range want {
		if math.Abs(c[i]-want[i]) > 1e-12 {
			t.Errorf("C[%d] = %v, want %v", i, c[i], want[i])
		}
	}
}

func TestProportionalOverload(t *testing.T) {
	c := Proportional{}.Congestion([]float64{0.6, 0.7})
	for i, v := range c {
		if !math.IsInf(v, 1) {
			t.Errorf("C[%d] = %v, want +Inf under overload", i, v)
		}
	}
}

func TestFairShareTwoUserClosedForm(t *testing.T) {
	// N=2, r1 ≤ r2: C1 = g(2 r1)/2, C2 = C1 + g(r1+r2) − g(2 r1).
	r := []float64{0.15, 0.35}
	c := FairShare{}.Congestion(r)
	c1 := mm1.G(0.3) / 2
	c2 := c1 + mm1.G(0.5) - mm1.G(0.3)
	if math.Abs(c[0]-c1) > 1e-12 || math.Abs(c[1]-c2) > 1e-12 {
		t.Errorf("FS = %v, want [%v %v]", c, c1, c2)
	}
}

func TestFairShareTable1Example(t *testing.T) {
	// The paper's Table 1: four users, ascending rates.  Verify the serial
	// formula against a direct evaluation of the preemptive-priority
	// construction: class k carries everyone's k-th rate increment, and
	// classes 1..k jointly form an M/M/1 with the "as-if" load x_k.
	r := []float64{0.10, 0.15, 0.20, 0.25}
	c := FairShare{}.Congestion(r)
	n := 4
	want := make([]float64, n)
	prevG, prefix := 0.0, 0.0
	acc := 0.0
	for k := 1; k <= n; k++ {
		xk := float64(n-k+1)*r[k-1] + prefix
		acc += (mm1.G(xk) - prevG) / float64(n-k+1)
		want[k-1] = acc
		prevG = mm1.G(xk)
		prefix += r[k-1]
	}
	for i := range want {
		if math.Abs(c[i]-want[i]) > 1e-12 {
			t.Errorf("C[%d] = %v, want %v", i, c[i], want[i])
		}
	}
	// Sanity: everyone's congestion is increasing in own rate rank.
	for i := 1; i < n; i++ {
		if c[i] <= c[i-1] {
			t.Errorf("FS congestion not increasing with rate: %v", c)
		}
	}
}

func TestFairShareUnsortedInputEquivalence(t *testing.T) {
	// Permutation equivariance: shuffling rates shuffles congestions.
	r := []float64{0.25, 0.10, 0.20, 0.15}
	c := FairShare{}.Congestion(r)
	sorted := []float64{0.10, 0.15, 0.20, 0.25}
	cs := FairShare{}.Congestion(sorted)
	perm := []int{3, 0, 2, 1} // r[i] == sorted[perm[i]]
	for i := range r {
		if math.Abs(c[i]-cs[perm[i]]) > 1e-12 {
			t.Errorf("permuted C[%d] = %v, want %v", i, c[i], cs[perm[i]])
		}
	}
}

func TestFairShareTies(t *testing.T) {
	// Tied users receive identical congestion.
	r := []float64{0.2, 0.1, 0.2}
	c := FairShare{}.Congestion(r)
	if math.Abs(c[0]-c[2]) > 1e-12 {
		t.Errorf("tied users differ: %v vs %v", c[0], c[2])
	}
	// All equal: everyone gets g(Nr)/N.
	req := []float64{0.2, 0.2, 0.2}
	ceq := FairShare{}.Congestion(req)
	want := mm1.SymmetricCongestion(3, 0.2)
	for i, v := range ceq {
		if math.Abs(v-want) > 1e-12 {
			t.Errorf("symmetric C[%d] = %v, want %v", i, v, want)
		}
	}
}

func TestFairShareInsulationOutsideDomain(t *testing.T) {
	// Others overload the switch; the small sender still gets the finite
	// congestion it would have in a symmetric system at its own rate.
	r := []float64{0.05, 0.9, 0.9}
	c := FairShare{}.Congestion(r)
	want := mm1.G(3*0.05) / 3
	if math.Abs(c[0]-want) > 1e-12 {
		t.Errorf("small sender C = %v, want %v", c[0], want)
	}
	if !math.IsInf(c[1], 1) || !math.IsInf(c[2], 1) {
		t.Errorf("flooders should see +Inf: %v", c)
	}
}

func TestHOLPriorityKnownValues(t *testing.T) {
	r := []float64{0.2, 0.1} // smallest-first: user 1 has priority
	c := HOLPriority{Order: SmallestFirst}.Congestion(r)
	c1 := mm1.G(0.1)
	c0 := mm1.G(0.3) - c1
	if math.Abs(c[1]-c1) > 1e-12 || math.Abs(c[0]-c0) > 1e-12 {
		t.Errorf("HOL = %v, want [%v %v]", c, c0, c1)
	}
	cl := HOLPriority{Order: LargestFirst}.Congestion(r)
	d0 := mm1.G(0.2)
	d1 := mm1.G(0.3) - d0
	if math.Abs(cl[0]-d0) > 1e-12 || math.Abs(cl[1]-d1) > 1e-12 {
		t.Errorf("HOL largest = %v, want [%v %v]", cl, d0, d1)
	}
}

func TestHOLPriorityTieGroup(t *testing.T) {
	r := []float64{0.2, 0.2, 0.1}
	c := HOLPriority{Order: SmallestFirst}.Congestion(r)
	if math.Abs(c[0]-c[1]) > 1e-12 {
		t.Errorf("tied users differ: %v", c)
	}
	wantTop := mm1.G(0.1)
	wantTie := (mm1.G(0.5) - mm1.G(0.1)) / 2
	if math.Abs(c[2]-wantTop) > 1e-12 || math.Abs(c[0]-wantTie) > 1e-12 {
		t.Errorf("HOL tie = %v, want [%v %v %v]", c, wantTie, wantTie, wantTop)
	}
}

func TestAllDisciplinesFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(5)
		r := randomRates(rng, n, 0.95)
		for _, a := range allDisciplines() {
			c := a.Congestion(r)
			rep := mm1.CheckFeasible(r, c, 1e-7)
			if !rep.Feasible {
				t.Fatalf("trial %d: %s infeasible at r=%v: %+v", trial, a.Name(), r, rep)
			}
		}
	}
}

func TestAllDisciplinesSymmetric(t *testing.T) {
	// Permutation equivariance for every discipline.
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(4)
		r := randomRates(rng, n, 0.9)
		perm := rng.Perm(n)
		rp := make([]float64, n)
		for i, p := range perm {
			rp[i] = r[p]
		}
		for _, a := range allDisciplines() {
			c := a.Congestion(r)
			cp := a.Congestion(rp)
			for i, p := range perm {
				if math.Abs(cp[i]-c[p]) > 1e-9 {
					t.Fatalf("%s not symmetric: trial %d user %d", a.Name(), trial, i)
				}
			}
		}
	}
}

func TestCongestionOfMatchesCongestion(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(4)
		r := randomRates(rng, n, 0.9)
		for _, a := range allDisciplines() {
			c := a.Congestion(r)
			for i := range r {
				if math.Abs(a.CongestionOf(r, i)-c[i]) > 1e-12 {
					t.Fatalf("%s CongestionOf mismatch", a.Name())
				}
			}
		}
	}
}

func TestOwnDerivsMatchFD(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(4)
		r := randomRates(rng, n, 0.7)
		// Fair Share is only C¹ across rate ties; separate the rates so the
		// finite-difference stencils stay within one smooth region.
		sortSeparate(r, 5e-3)
		for _, a := range []core.Allocation{Proportional{}, FairShare{}, Square{}} {
			for i := range r {
				d1, d2 := OwnDerivs(a, r, i)
				f := func(x float64) float64 {
					return a.CongestionOf(core.WithRate(r, i, x), i)
				}
				fd1 := numeric.Derivative(f, r[i], 1e-7)
				fd2 := numeric.SecondDerivative(f, r[i], 1e-4)
				if math.Abs(d1-fd1) > 1e-4*(1+math.Abs(d1)) {
					t.Fatalf("%s ∂C/∂r mismatch: %v vs FD %v at r=%v i=%d", a.Name(), d1, fd1, r, i)
				}
				if math.Abs(d2-fd2) > 1e-2*(1+math.Abs(d2)) {
					t.Fatalf("%s ∂²C/∂r² mismatch: %v vs FD %v at r=%v i=%d", a.Name(), d2, fd2, r, i)
				}
			}
		}
	}
}

func TestFairShareJacobianMatchesFD(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	fs := FairShare{}
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(4)
		r := randomRates(rng, n, 0.85)
		analytic := numeric.MatrixFromRows(fs.Jacobian(r))
		fd := numeric.JacobianFD(fs.Congestion, r, 1e-7)
		if d := analytic.Sub(fd).MaxAbs(); d > 1e-3*(1+analytic.MaxAbs()) {
			t.Fatalf("trial %d: FS Jacobian mismatch %v\nanalytic:\n%v\nfd:\n%v", trial, d, analytic, fd)
		}
	}
}

func TestProportionalJacobianMatchesFD(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	p := Proportional{}
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(4)
		r := randomRates(rng, n, 0.85)
		analytic := numeric.MatrixFromRows(p.Jacobian(r))
		fd := numeric.JacobianFD(p.Congestion, r, 1e-7)
		if d := analytic.Sub(fd).MaxAbs(); d > 1e-3*(1+analytic.MaxAbs()) {
			t.Fatalf("trial %d: proportional Jacobian mismatch %v", trial, d)
		}
	}
}

func TestFairShareTriangularity(t *testing.T) {
	// ∂C_i/∂r_j = 0 whenever r_j > r_i — the paper's partial insulation.
	rng := rand.New(rand.NewSource(48))
	fs := FairShare{}
	for trial := 0; trial < 80; trial++ {
		n := 2 + rng.Intn(5)
		r := randomRates(rng, n, 0.9)
		jac := fs.Jacobian(r)
		for i := range r {
			for j := range r {
				if r[j] > r[i] && math.Abs(jac[i][j]) > 1e-12 {
					t.Fatalf("trial %d: ∂C_%d/∂r_%d = %v but r_%d > r_%d", trial, i, j, jac[i][j], j, i)
				}
				if r[j] < r[i] && jac[i][j] <= 0 {
					t.Fatalf("trial %d: ∂C_%d/∂r_%d = %v should be > 0 for smaller sender", trial, i, j, jac[i][j])
				}
			}
		}
	}
}

func TestFairShareProtectivenessProperty(t *testing.T) {
	// Theorem 8: C_i(r) ≤ C_i(r_i, r_i, ..., r_i) for every r, even under
	// overload by others.
	rng := rand.New(rand.NewSource(49))
	fs := FairShare{}
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(5)
		r := make([]float64, n)
		for i := range r {
			r[i] = 0.01 + 1.5*rng.Float64() // deliberately allows overload
		}
		c := fs.Congestion(r)
		for i := range r {
			bound := mm1.ProtectionBound(n, r[i])
			if c[i] > bound*(1+1e-12)+1e-12 {
				t.Fatalf("trial %d: C[%d]=%v exceeds bound %v at r=%v", trial, i, c[i], bound, r)
			}
		}
	}
}

func TestMACMembership(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(3)
		r := randomRates(rng, n, 0.8)
		// Perturb away from ties so FD derivatives are clean.
		for i := range r {
			r[i] *= 1 + 0.01*float64(i)
		}
		for _, a := range []core.Allocation{Proportional{}, FairShare{}, HOLPriority{Order: SmallestFirst}} {
			rep := CheckMAC(a, r, 1e-6)
			if !rep.OK {
				t.Fatalf("%s should satisfy MAC at %v: %+v", a.Name(), r, rep)
			}
		}
	}
}

func TestBlendInterpolates(t *testing.T) {
	r := []float64{0.1, 0.3}
	fs := FairShare{}.Congestion(r)
	pr := Proportional{}.Congestion(r)
	for _, th := range []float64{0, 0.25, 0.5, 1} {
		c := Blend{Theta: th}.Congestion(r)
		for i := range c {
			want := th*fs[i] + (1-th)*pr[i]
			if math.Abs(c[i]-want) > 1e-12 {
				t.Errorf("θ=%v C[%d]=%v want %v", th, i, c[i], want)
			}
		}
	}
}

func TestSquareAllocation(t *testing.T) {
	r := []float64{0.3, 0.4}
	c := Square{}.Congestion(r)
	if math.Abs(c[0]-0.09) > 1e-15 || math.Abs(c[1]-0.16) > 1e-15 {
		t.Errorf("Square = %v", c)
	}
	d1, d2 := Square{}.OwnDerivs(r, 1)
	if math.Abs(d1-0.8) > 1e-15 || d2 != 2 {
		t.Errorf("Square derivs = %v %v", d1, d2)
	}
}

func TestSingleUserDegenerate(t *testing.T) {
	// With one user every discipline reduces to the M/M/1 queue.
	r := []float64{0.4}
	want := mm1.G(0.4)
	for _, a := range allDisciplines() {
		c := a.Congestion(r)
		if len(c) != 1 || math.Abs(c[0]-want) > 1e-12 {
			t.Errorf("%s single-user C = %v, want %v", a.Name(), c, want)
		}
	}
}

func TestEmptyRates(t *testing.T) {
	for _, a := range allDisciplines() {
		if c := a.Congestion(nil); len(c) != 0 {
			t.Errorf("%s empty input gave %v", a.Name(), c)
		}
	}
}
