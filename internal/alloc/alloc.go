// Package alloc implements the switch allocation functions C(r) analyzed in
// the paper: the proportional allocation realized by FIFO (and any other
// class-blind discipline such as LIFO or packet-wise processor sharing), the
// Fair Share allocation (serial cost sharing), head-of-line strict priority
// allocations, convex blends, and the separable-constraint allocation of
// Corollary 2.  It also provides derivative helpers and MAC-membership
// checks used by the game solvers and the test suite.
package alloc

import (
	"math"

	"greednet/internal/core"
	"greednet/internal/mm1"
	"greednet/internal/numeric"
)

// Proportional is the allocation C_i = r_i / (1 − Σr) realized by the FIFO
// service discipline — and, because exponential service makes every
// class-blind work-conserving discipline give each packet the same delay
// distribution, also by LIFO-preemptive and packet-wise processor sharing.
type Proportional struct{}

// Name implements core.Allocation.
func (Proportional) Name() string { return "proportional" }

// Congestion implements core.Allocation by delegating to CongestionInto,
// the single source of the arithmetic.
func (p Proportional) Congestion(r []core.Rate) []core.Congestion {
	return p.CongestionInto(nil, make([]float64, len(r)), r)
}

// CongestionInto implements core.AllocationInto.
//
//lint:hotpath
func (Proportional) CongestionInto(ws *core.Workspace, dst []core.Congestion, r []core.Rate) []core.Congestion {
	s := mm1.Sum(r)
	if s >= 1 {
		for i := range dst {
			dst[i] = math.Inf(1)
		}
		return dst
	}
	d := 1 - s
	for i, ri := range r {
		dst[i] = ri / d
	}
	return dst
}

// CongestionOf implements core.Allocation.
func (Proportional) CongestionOf(r []core.Rate, i int) core.Congestion {
	s := mm1.Sum(r)
	if s >= 1 {
		return math.Inf(1)
	}
	return r[i] / (1 - s)
}

// OwnDerivs implements core.OwnDeriver:
// ∂C_i/∂r_i = (1−s+r_i)/(1−s)², ∂²C_i/∂r_i² = 2(1−s+r_i)/(1−s)³.
func (Proportional) OwnDerivs(r []core.Rate, i int) (float64, float64) {
	s := mm1.Sum(r)
	if s >= 1 {
		return math.Inf(1), math.Inf(1)
	}
	d := 1 - s
	num := d + r[i]
	return num / (d * d), 2 * num / (d * d * d)
}

// OwnDerivsInto implements core.WorkspaceOwnDeriver; the closed form needs
// no scratch, so it simply forwards.
//
//lint:hotpath
func (p Proportional) OwnDerivsInto(ws *core.Workspace, r []core.Rate, i int) (float64, float64) {
	return p.OwnDerivs(r, i)
}

// Jacobian implements core.Jacobianer:
// ∂C_i/∂r_j = r_i/(1−s)² for j ≠ i, (1−s+r_i)/(1−s)² for j = i.
func (Proportional) Jacobian(r []core.Rate) [][]float64 {
	n := len(r)
	s := mm1.Sum(r)
	out := make([][]float64, n)
	d := 1 - s
	for i := range out {
		out[i] = make([]float64, n)
		for j := range out[i] {
			if s >= 1 {
				out[i][j] = math.Inf(1)
				continue
			}
			if i == j {
				out[i][j] = (d + r[i]) / (d * d)
			} else {
				out[i][j] = r[i] / (d * d)
			}
		}
	}
	return out
}

// Square is the Corollary-2 allocation C_i = r_i² for the alternative
// separable constraint world Σc_i = Σr_i².  It is NOT M/M/1-feasible; it
// exists to demonstrate that constraint functions expressible as
// (N−1)⁻¹Σh_i with ∂h_i/∂r_i = 0 admit allocations whose Nash equilibria
// are all Pareto optimal.
type Square struct{}

// Name implements core.Allocation.
func (Square) Name() string { return "square" }

// Congestion implements core.Allocation.
func (sq Square) Congestion(r []core.Rate) []core.Congestion {
	return sq.CongestionInto(nil, make([]float64, len(r)), r)
}

// CongestionInto implements core.AllocationInto.
func (Square) CongestionInto(ws *core.Workspace, dst []core.Congestion, r []core.Rate) []core.Congestion {
	for i, ri := range r {
		dst[i] = ri * ri
	}
	return dst
}

// CongestionOf implements core.Allocation.
func (Square) CongestionOf(r []core.Rate, i int) core.Congestion { return r[i] * r[i] }

// OwnDerivs implements core.OwnDeriver.
func (Square) OwnDerivs(r []core.Rate, i int) (float64, float64) { return 2 * r[i], 2 }

// Jacobian implements core.Jacobianer.
func (Square) Jacobian(r []core.Rate) [][]float64 {
	n := len(r)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		out[i][i] = 2 * r[i]
	}
	return out
}

// Blend is the convex combination θ·FairShare + (1−θ)·Proportional.  Both
// endpoints satisfy the total-queue equality and the subset inequalities,
// which are linear in c for fixed r, so every blend is a feasible interior
// allocation.  Blends interpolate between FIFO-like and Fair-Share-like
// behaviour and are used by the ablation experiments.
type Blend struct {
	// Theta is the Fair Share weight in [0, 1].
	Theta float64
}

// Name implements core.Allocation.
func (b Blend) Name() string { return "blend" }

// Congestion implements core.Allocation.
func (b Blend) Congestion(r []core.Rate) []core.Congestion {
	return b.CongestionInto(nil, make([]float64, len(r)), r)
}

// CongestionInto implements core.AllocationInto, evaluating both endpoint
// allocations into workspace scratch.  dst must not alias the workspace's
// VecA/VecB vectors.
func (b Blend) CongestionInto(ws *core.Workspace, dst []core.Congestion, r []core.Rate) []core.Congestion {
	n := len(r)
	fs := FairShare{}.CongestionInto(ws, ws.VecA(n), r)
	pr := Proportional{}.CongestionInto(ws, ws.VecB(n), r)
	for i := range dst {
		dst[i] = b.Theta*fs[i] + (1-b.Theta)*pr[i]
	}
	return dst
}

// CongestionOf implements core.Allocation.
func (b Blend) CongestionOf(r []core.Rate, i int) core.Congestion {
	return b.Theta*FairShare{}.CongestionOf(r, i) + (1-b.Theta)*Proportional{}.CongestionOf(r, i)
}

// OwnDerivs implements core.OwnDeriver by combining the endpoints.
func (b Blend) OwnDerivs(r []core.Rate, i int) (float64, float64) {
	return b.OwnDerivsInto(nil, r, i)
}

// OwnDerivsInto implements core.WorkspaceOwnDeriver; see OwnDerivs.
func (b Blend) OwnDerivsInto(ws *core.Workspace, r []core.Rate, i int) (float64, float64) {
	f1, f2 := FairShare{}.OwnDerivsInto(ws, r, i)
	p1, p2 := Proportional{}.OwnDerivs(r, i)
	return b.Theta*f1 + (1-b.Theta)*p1, b.Theta*f2 + (1-b.Theta)*p2
}

// OwnDerivs returns (∂C_i/∂r_i, ∂²C_i/∂r_i²) for any allocation, using the
// analytic implementation when available and central finite differences
// otherwise.
func OwnDerivs(a core.Allocation, r []core.Rate, i int) (d1, d2 float64) {
	return OwnDerivsInto(a, nil, r, i)
}

// OwnDerivsInto is OwnDerivs with workspace reuse: allocations providing
// the scratch-reusing fast path are called through it (bit-identical by
// the delegation contract); analytic implementations without one are used
// directly; everything else falls back to central finite differences.
func OwnDerivsInto(a core.Allocation, ws *core.Workspace, r []core.Rate, i int) (d1, d2 float64) {
	if od, ok := a.(core.WorkspaceOwnDeriver); ok {
		return od.OwnDerivsInto(ws, r, i)
	}
	if od, ok := a.(core.OwnDeriver); ok {
		return od.OwnDerivs(r, i)
	}
	f := func(x float64) float64 {
		return a.CongestionOf(core.WithRate(r, i, x), i)
	}
	h := 1e-6 * (math.Abs(r[i]) + 1e-3)
	return numeric.Derivative(f, r[i], h), numeric.SecondDerivative(f, r[i], 0)
}

// CongestionInto evaluates C(r) into dst for any allocation: through the
// core.AllocationInto fast path when the discipline provides one, and by
// copying the slow path's freshly allocated result otherwise.  dst must
// have len(r) elements.
func CongestionInto(a core.Allocation, ws *core.Workspace, dst []core.Congestion, r []core.Rate) []core.Congestion {
	if ai, ok := a.(core.AllocationInto); ok {
		return ai.CongestionInto(ws, dst, r)
	}
	copy(dst, a.Congestion(r))
	return dst
}

// CongestionOfInto returns C_i(r) alone, reusing ws and dst (len(r)
// elements of scratch) when the allocation has a fast path and falling
// back to CongestionOf otherwise.  Values are bit-identical to
// a.CongestionOf(r, i) for the in-tree disciplines, whose CongestionOf is
// defined as Congestion(r)[i] arithmetic.
func CongestionOfInto(a core.Allocation, ws *core.Workspace, dst []core.Congestion, r []core.Rate, i int) core.Congestion {
	if ai, ok := a.(core.AllocationInto); ok {
		return ai.CongestionInto(ws, dst, r)[i]
	}
	return a.CongestionOf(r, i)
}

// JacobianOf returns the full matrix ∂C_i/∂r_j for any allocation,
// analytic when available, finite differences otherwise.
func JacobianOf(a core.Allocation, r []core.Rate) *numeric.Matrix {
	if j, ok := a.(core.Jacobianer); ok {
		return numeric.MatrixFromRows(j.Jacobian(r))
	}
	return numeric.JacobianFD(a.Congestion, r, 0)
}

// MACReport summarizes a numeric check of the paper's MAC (monotonic
// allocation class) conditions at a point.
type MACReport struct {
	// MinOffDiag is the smallest ∂C_i/∂r_j over i ≠ j; MAC requires ≥ 0.
	MinOffDiag float64
	// MinOwn is the smallest ∂C_i/∂r_i; MAC requires > 0.
	MinOwn float64
	// OK is true when both conditions hold within tol.
	OK bool
}

// CheckMAC verifies MAC conditions (1) and (2) at r with tolerance tol.
func CheckMAC(a core.Allocation, r []core.Rate, tol float64) MACReport {
	jac := JacobianOf(a, r)
	rep := MACReport{MinOffDiag: math.Inf(1), MinOwn: math.Inf(1)}
	n := len(r)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := jac.At(i, j)
			if i == j {
				if v < rep.MinOwn {
					rep.MinOwn = v
				}
			} else if v < rep.MinOffDiag {
				rep.MinOffDiag = v
			}
		}
	}
	if n == 1 {
		rep.MinOffDiag = 0
	}
	rep.OK = rep.MinOffDiag >= -tol && rep.MinOwn > tol
	return rep
}
