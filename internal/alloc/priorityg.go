package alloc

import (
	"math"

	"greednet/internal/core"
	"greednet/internal/mm1"
)

// This file computes the exact allocations of priority disciplines under
// general (M/G/1) service, using the preemptive-resume priority formulas
// (Bertsekas & Gallager, Data Networks §3.5.3): with classes 1..K in
// decreasing priority, class loads σ_k = Σ_{j≤k} λ_j, unit-mean service,
// and E[S²] = 1 + CV², the mean time in system of a class-k packet is
//
//	T_k = ( (1−σ_k) + R_k ) / ((1−σ_{k−1})(1−σ_k)),   R_k = σ_k·E[S²]/2.
//
// For exponential service (CV² = 1) these make the Table-1 construction
// realize the serial (Fair Share) allocation exactly; for other service
// distributions the realization drifts from the serial ideal because the
// mean *number* in system is discipline-dependent beyond work conservation
// — the paper's footnote-5 generalization is about the feasible set, not
// about this particular realization.

// classTimesPreemptive returns the per-class mean sojourn times for
// preemptive-resume priority with the given class arrival rates (highest
// priority first) and service second moment es2 = E[S²].  Classes whose
// cumulative load reaches 1 get +Inf.
func classTimesPreemptive(lambda []float64, es2 float64) []float64 {
	T := make([]float64, len(lambda))
	sigma := 0.0
	r := 0.0
	for k, l := range lambda {
		prev := sigma
		sigma += l
		r += l * es2 / 2
		if sigma >= 1 {
			for m := k; m < len(lambda); m++ {
				T[m] = math.Inf(1)
			}
			return T
		}
		T[k] = ((1 - sigma) + r) / ((1 - prev) * (1 - sigma))
	}
	return T
}

// TablePriorityG is the exact allocation produced by the paper's Table-1
// priority construction when the server's service times have squared
// coefficient of variation Model.CV2 (preemptive-resume priority,
// FIFO within class, class m carrying each big-enough user's m-th rate
// increment).  At CV2 = 1 it coincides with FairShare/SerialG(MM1).
type TablePriorityG struct {
	// Model supplies the service variability (only CV2 is used; the mean
	// is 1 by construction).
	Model mm1.MG1
}

// Name implements core.Allocation.
func (t TablePriorityG) Name() string { return "table-priority-" + t.Model.Name() }

// Congestion implements core.Allocation.  With users relabeled ascending,
// class m (1-based) has arrival rate (N−m+1)·(r_m − r_{m−1}) and each user
// of rank ≥ m contributes equally, so user k's mean queue is
// Σ_{m≤k} λ_m·T_m/(N−m+1) = Σ_{m≤k} (r_m − r_{m−1})·T_m.
func (t TablePriorityG) Congestion(r []core.Rate) []core.Congestion {
	n := len(r)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	idx := ascending(r)
	es2 := 1 + t.Model.CV2
	lambda := make([]float64, n)
	incr := make([]float64, n)
	prev := 0.0
	for m := 0; m < n; m++ {
		inc := r[idx[m]] - prev
		prev = r[idx[m]]
		incr[m] = inc
		lambda[m] = float64(n-m) * inc
	}
	T := classTimesPreemptive(lambda, es2)
	c := 0.0
	for k := 0; k < n; k++ {
		if math.IsInf(T[k], 1) && incr[k] > 0 {
			for m := k; m < n; m++ {
				out[idx[m]] = math.Inf(1)
			}
			return out
		}
		if incr[k] > 0 {
			c += incr[k] * T[k]
		}
		out[idx[k]] = c
	}
	return out
}

// CongestionOf implements core.Allocation.
func (t TablePriorityG) CongestionOf(r []core.Rate, i int) core.Congestion {
	return t.Congestion(r)[i]
}

// HOLPriorityG is the exact allocation of strict preemptive-resume
// priority keyed to ascending rate order under general service: user of
// rank k (one class per user) has mean queue λ_k·T_k.
type HOLPriorityG struct {
	// Model supplies the service variability.
	Model mm1.MG1
}

// Name implements core.Allocation.
func (h HOLPriorityG) Name() string { return "hol-priority-" + h.Model.Name() }

// Congestion implements core.Allocation.
func (h HOLPriorityG) Congestion(r []core.Rate) []core.Congestion {
	n := len(r)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	idx := ascending(r)
	lambda := make([]float64, n)
	for k := 0; k < n; k++ {
		lambda[k] = r[idx[k]]
	}
	T := classTimesPreemptive(lambda, 1+h.Model.CV2)
	for k := 0; k < n; k++ {
		out[idx[k]] = lambda[k] * T[k]
	}
	return out
}

// CongestionOf implements core.Allocation.
func (h HOLPriorityG) CongestionOf(r []core.Rate, i int) core.Congestion {
	return h.Congestion(r)[i]
}
