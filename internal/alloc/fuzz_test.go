package alloc

import (
	"math"
	"testing"

	"greednet/internal/mm1"
)

// FuzzFairShareInvariants drives the Fair Share allocation with arbitrary
// rate triples and checks its structural invariants: protection bound,
// feasibility inside the stable region, tie symmetry, and insulation
// monotonicity.
func FuzzFairShareInvariants(f *testing.F) {
	f.Add(0.1, 0.2, 0.3)
	f.Add(0.2, 0.2, 0.2)
	f.Add(0.05, 0.9, 0.9)
	f.Add(1e-6, 0.5, 0.4999)
	f.Fuzz(func(t *testing.T, a, b, c float64) {
		sane := func(v float64) bool {
			return !math.IsNaN(v) && !math.IsInf(v, 0) && v > 0 && v < 10
		}
		if !sane(a) || !sane(b) || !sane(c) {
			t.Skip()
		}
		r := []float64{a, b, c}
		fs := FairShare{}
		cgs := fs.Congestion(r)
		// Protection: C_i ≤ r_i/(1 − 3 r_i) always.
		for i := range r {
			bound := mm1.ProtectionBound(3, r[i])
			if cgs[i] > bound*(1+1e-9)+1e-9 {
				t.Fatalf("protection violated at r=%v: C=%v bound=%v", r, cgs[i], bound)
			}
			if cgs[i] < 0 {
				t.Fatalf("negative congestion at r=%v: %v", r, cgs)
			}
		}
		// Feasibility inside the stable region.
		if mm1.Sum(r) < 0.999 {
			if rep := mm1.CheckFeasible(r, cgs, 1e-6); !rep.Feasible {
				t.Fatalf("infeasible FS allocation at r=%v: %+v (c=%v)", r, rep, cgs)
			}
		}
		// Congestion ordering follows rate ordering.
		for i := range r {
			for j := range r {
				if r[i] < r[j] && cgs[i] > cgs[j]+1e-12 {
					t.Fatalf("ordering violated at r=%v: c=%v", r, cgs)
				}
			}
		}
	})
}

// FuzzTablePriorityGMatchesFairShareAtCV1 cross-checks the two independent
// implementations (serial recursion vs preemptive-priority formulas) on
// arbitrary inputs.
func FuzzTablePriorityGMatchesFairShareAtCV1(f *testing.F) {
	f.Add(0.1, 0.25, 0.3)
	f.Add(0.3, 0.3, 0.3)
	f.Fuzz(func(t *testing.T, a, b, c float64) {
		ok := func(v float64) bool {
			return !math.IsNaN(v) && v > 1e-9 && v < 0.33
		}
		if !ok(a) || !ok(b) || !ok(c) {
			t.Skip()
		}
		r := []float64{a, b, c}
		x := FairShare{}.Congestion(r)
		y := TablePriorityG{Model: mm1.MG1{CV2: 1}}.Congestion(r)
		for i := range r {
			if math.Abs(x[i]-y[i]) > 1e-8*(1+x[i]) {
				t.Fatalf("implementations disagree at r=%v: %v vs %v", r, x, y)
			}
		}
	})
}
