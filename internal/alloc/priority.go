package alloc

import (
	"math"
	"sort"

	"greednet/internal/core"

	"greednet/internal/mm1"
)

// PriorityOrder selects which users a HOL strict-priority discipline
// favors.
type PriorityOrder int

const (
	// SmallestFirst gives the highest preemptive priority to the user with
	// the smallest rate.  This is the favor-the-meek ordering; it is in MAC.
	SmallestFirst PriorityOrder = iota
	// LargestFirst gives the highest priority to the largest sender — the
	// "reward the greedy" ordering, useful as a worst-case contrast.
	LargestFirst
)

// HOLPriority is the head-of-line preemptive strict-priority allocation with
// priority classes keyed to the rate ordering (making the allocation
// function symmetric).  For the ascending (SmallestFirst) ordering, classes
// 1..k jointly form an M/M/1 system unaffected by lower classes, so with
// σ_k = Σ_{j≤k} r_j the per-user congestion is
//
//	C_k = g(σ_k) − g(σ_{k−1}).
//
// Users with exactly equal rates form one class served processor-sharing
// style and split that class's queue equally, preserving symmetry.
type HOLPriority struct {
	Order PriorityOrder
}

// Name implements core.Allocation.
func (h HOLPriority) Name() string {
	if h.Order == LargestFirst {
		return "hol-priority-largest"
	}
	return "hol-priority-smallest"
}

// sortedIdx returns user indices in the discipline's priority order
// (highest priority first).
func (h HOLPriority) sortedIdx(r []core.Rate) []int {
	idx := make([]int, len(r))
	for i := range idx {
		idx[i] = i
	}
	if h.Order == LargestFirst {
		sort.SliceStable(idx, func(a, b int) bool { return r[idx[a]] > r[idx[b]] })
	} else {
		sort.SliceStable(idx, func(a, b int) bool { return r[idx[a]] < r[idx[b]] })
	}
	return idx
}

// Congestion implements core.Allocation.
func (h HOLPriority) Congestion(r []core.Rate) []core.Congestion {
	n := len(r)
	out := make([]float64, n)
	idx := h.sortedIdx(r)
	sigma := 0.0
	prevG := 0.0
	for k := 0; k < n; {
		// Identify the tie group [k, m).
		m := k + 1
		for m < n && r[idx[m]] == r[idx[k]] { //lint:allow floateq exact rate ties define the priority groups
			m++
		}
		for j := k; j < m; j++ {
			sigma += r[idx[j]]
		}
		gk := mm1.G(sigma)
		if math.IsInf(gk, 1) {
			for j := k; j < n; j++ {
				out[idx[j]] = math.Inf(1)
			}
			return out
		}
		share := (gk - prevG) / float64(m-k)
		for j := k; j < m; j++ {
			out[idx[j]] = share
		}
		prevG = gk
		k = m
	}
	return out
}

// CongestionOf implements core.Allocation.
func (h HOLPriority) CongestionOf(r []core.Rate, i int) core.Congestion {
	return h.Congestion(r)[i]
}

// OwnDerivs implements core.OwnDeriver for the untied case:
// ∂C_k/∂r_k = g'(σ_k) and ∂²C_k/∂r_k² = g”(σ_k) in priority labels.
// At ties the allocation is only piecewise smooth; the returned value is
// the derivative of the tie-group formula, adequate for the solvers.
func (h HOLPriority) OwnDerivs(r []core.Rate, i int) (float64, float64) {
	idx := h.sortedIdx(r)
	sigma := 0.0
	for k := 0; k < len(r); k++ {
		sigma += r[idx[k]]
		if idx[k] == i {
			return mm1.GPrime(sigma), mm1.GPrime2(sigma)
		}
	}
	return math.NaN(), math.NaN()
}
