package alloc

import (
	"math"
	"sort"

	"greednet/internal/core"

	"greednet/internal/mm1"
)

// FairShare is the paper's Fair Share allocation function — the serial cost
// sharing method of Moulin and Shenker.  With users relabeled so that the
// rates are ascending and σ_k = Σ_{j≤k} r_j, define
//
//	x_k = (N−k+1)·r_k + σ_{k−1}
//	C_1 = g(x_1)/N
//	C_k = C_{k−1} + (g(x_k) − g(x_{k−1})) / (N−k+1)
//
// The x_k are nondecreasing, so once the "as-if-everyone-sent-like-user-k"
// load x_k reaches 1, user k and all larger senders receive infinite
// congestion while smaller senders stay finite — the insulation property
// that drives every uniqueness theorem in the paper.
type FairShare struct{}

// Name implements core.Allocation.
func (FairShare) Name() string { return "fair-share" }

// ascending returns the indices of r sorted by ascending rate (stable).
func ascending(r []core.Rate) []int {
	idx := make([]int, len(r))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return r[idx[a]] < r[idx[b]] })
	return idx
}

// Congestion implements core.Allocation by delegating to CongestionInto
// with transient scratch; the fast path is the single source of the
// arithmetic, which is what makes the two bit-identical.
func (fs FairShare) Congestion(r []core.Rate) []core.Congestion {
	return fs.CongestionInto(nil, make([]float64, len(r)), r)
}

// CongestionInto implements core.AllocationInto.  The arithmetic — relabel,
// prefix accumulation, incremental cost shares — runs in exactly the order
// Congestion historically used, so results are bit-identical.
//
//lint:hotpath
func (FairShare) CongestionInto(ws *core.Workspace, dst []core.Congestion, r []core.Rate) []core.Congestion {
	n := len(r)
	if n == 0 {
		return dst
	}
	idx := ws.Ascending(r)
	prefix := 0.0 // σ_{k−1}
	prevG := 0.0  // g(x_{k−1}), with g(x_0) = 0
	c := 0.0
	for k := 1; k <= n; k++ {
		i := idx[k-1]
		xk := float64(n-k+1)*r[i] + prefix
		gk := mm1.G(xk)
		if math.IsInf(gk, 1) {
			// This and all larger senders are flooded.
			for m := k; m <= n; m++ {
				dst[idx[m-1]] = math.Inf(1)
			}
			return dst
		}
		c += (gk - prevG) / float64(n-k+1)
		dst[i] = c
		prevG = gk
		prefix += r[i]
	}
	return dst
}

// CongestionOf implements core.Allocation.
func (fs FairShare) CongestionOf(r []core.Rate, i int) core.Congestion {
	// Computing user i's share requires the shares of all smaller senders
	// anyway, so delegate to the full evaluation.
	return fs.Congestion(r)[i]
}

// OwnDerivs implements core.OwnDeriver.  In the ascending labeling, user k's
// congestion depends on its own rate only through g(x_k)/(N−k+1) with
// ∂x_k/∂r_k = N−k+1, so
//
//	∂C_k/∂r_k  = g'(x_k)
//	∂²C_k/∂r_k² = (N−k+1)·g''(x_k)
//
// Both formulas are continuous across rate ties.
func (fs FairShare) OwnDerivs(r []core.Rate, i int) (float64, float64) {
	return fs.OwnDerivsInto(nil, r, i)
}

// OwnDerivsInto implements core.WorkspaceOwnDeriver; see OwnDerivs.
//
//lint:hotpath
func (FairShare) OwnDerivsInto(ws *core.Workspace, r []core.Rate, i int) (float64, float64) {
	n := len(r)
	idx := ws.Ascending(r)
	prefix := 0.0
	for k := 1; k <= n; k++ {
		j := idx[k-1]
		if j == i {
			xk := float64(n-k+1)*r[i] + prefix
			return mm1.GPrime(xk), float64(n-k+1) * mm1.GPrime2(xk)
		}
		prefix += r[j]
	}
	return math.NaN(), math.NaN()
}

// Jacobian implements core.Jacobianer.  Writing C_k = Σ_{m≤k}
// (g(x_m) − g(x_{m−1}))/(N−m+1) with ∂x_m/∂r_j = N−m+1 for j = m, 1 for
// j < m, and 0 for j > m (ascending labels), the matrix is lower triangular
// in the ascending order: small variations in r_j affect C_i only when
// r_j ≤ r_i, the paper's partial-insulation structure.
func (fs FairShare) Jacobian(r []core.Rate) [][]float64 {
	n := len(r)
	dst := make([][]float64, n)
	for i := range dst {
		dst[i] = make([]float64, n)
	}
	return fs.JacobianInto(nil, dst, r)
}

// JacobianInto implements core.WorkspaceJacobianer; see Jacobian.
//
//lint:hotpath
func (FairShare) JacobianInto(ws *core.Workspace, dst [][]float64, r []core.Rate) [][]float64 {
	n := len(r)
	idx := ws.Ascending(r)
	// gp[k] = g'(x_k) for k = 1..n in ascending labels (index k−1).
	gp := ws.VecA(n)
	prefix := 0.0
	for k := 1; k <= n; k++ {
		xk := float64(n-k+1)*r[idx[k-1]] + prefix
		gp[k-1] = mm1.GPrime(xk)
		prefix += r[idx[k-1]]
	}
	for i := range dst {
		row := dst[i]
		for j := range row {
			row[j] = 0
		}
	}
	// dSorted[k][j]: derivative of C_(k) wrt r_(j) in ascending labels.
	for k := 1; k <= n; k++ {
		rowUser := idx[k-1]
		for j := 1; j <= k; j++ {
			colUser := idx[j-1]
			// Sum over m = 1..k of d/dr_j [ (g(x_m) − g(x_{m−1})) / (N−m+1) ].
			// ∂x_m/∂r_j = (N−m+1) if m == j, 1 if m > j, 0 if m < j.
			d := 0.0
			for m := j; m <= k; m++ {
				var dxm float64
				if m == j {
					dxm = float64(n - m + 1)
				} else {
					dxm = 1
				}
				var dxm1 float64 // ∂x_{m−1}/∂r_j
				switch {
				case m-1 < j:
					dxm1 = 0
				case m-1 == j:
					dxm1 = float64(n - (m - 1) + 1)
				default:
					dxm1 = 1
				}
				gm := gp[m-1]
				gm1 := 0.0
				if m >= 2 {
					gm1 = gp[m-2]
				}
				d += (gm*dxm - gm1*dxm1) / float64(n-m+1)
			}
			dst[rowUser][colUser] = d
		}
	}
	return dst
}
