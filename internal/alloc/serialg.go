package alloc

import (
	"math"

	"greednet/internal/core"
	"greednet/internal/mm1"
)

// SerialG is the Fair Share (serial cost sharing) allocation generalized
// to an arbitrary server model with strictly increasing, strictly convex
// total-congestion function L — the footnote-5 generalization.  With the
// M/M/1 model it coincides with FairShare.
type SerialG struct {
	// Model is the station's congestion model (e.g. mm1.MG1{CV2: 2}).
	Model mm1.ServerModel
}

// Name implements core.Allocation.
func (s SerialG) Name() string { return "serial-" + s.Model.Name() }

// Congestion implements core.Allocation using the serial recursion with
// L in place of g.
func (s SerialG) Congestion(r []core.Rate) []core.Congestion {
	n := len(r)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	idx := ascending(r)
	prefix := 0.0
	prevL := 0.0
	c := 0.0
	for k := 1; k <= n; k++ {
		i := idx[k-1]
		xk := float64(n-k+1)*r[i] + prefix
		lk := s.Model.L(xk)
		if math.IsInf(lk, 1) {
			for m := k; m <= n; m++ {
				out[idx[m-1]] = math.Inf(1)
			}
			return out
		}
		c += (lk - prevL) / float64(n-k+1)
		out[i] = c
		prevL = lk
		prefix += r[i]
	}
	return out
}

// CongestionOf implements core.Allocation.
func (s SerialG) CongestionOf(r []core.Rate, i int) core.Congestion {
	return s.Congestion(r)[i]
}

// OwnDerivs implements core.OwnDeriver: in ascending labels,
// ∂C_k/∂r_k = L'(x_k) and ∂²C_k/∂r_k² = (N−k+1)·L”(x_k).
func (s SerialG) OwnDerivs(r []core.Rate, i int) (float64, float64) {
	n := len(r)
	idx := ascending(r)
	prefix := 0.0
	for k := 1; k <= n; k++ {
		j := idx[k-1]
		if j == i {
			xk := float64(n-k+1)*r[i] + prefix
			return s.Model.LPrime(xk), float64(n-k+1) * s.Model.LPrime2(xk)
		}
		prefix += r[j]
	}
	return math.NaN(), math.NaN()
}

// ProportionalG is the class-blind (FIFO-like) allocation generalized to
// an arbitrary server model: C_i = r_i · L(Σr)/Σr.  With the M/M/1 model
// it coincides with Proportional.
type ProportionalG struct {
	// Model is the station's congestion model.
	Model mm1.ServerModel
}

// Name implements core.Allocation.
func (p ProportionalG) Name() string { return "proportional-" + p.Model.Name() }

// Congestion implements core.Allocation.
func (p ProportionalG) Congestion(r []core.Rate) []core.Congestion {
	out := make([]float64, len(r))
	s := mm1.Sum(r)
	if s >= 1 {
		for i := range out {
			out[i] = math.Inf(1)
		}
		return out
	}
	perRate := 1.0 // lim_{x→0} L(x)/x = L'(0)
	if s > 0 {
		perRate = p.Model.L(s) / s
	} else {
		perRate = p.Model.LPrime(0)
	}
	for i, ri := range r {
		out[i] = ri * perRate
	}
	return out
}

// CongestionOf implements core.Allocation.
func (p ProportionalG) CongestionOf(r []core.Rate, i int) core.Congestion {
	s := mm1.Sum(r)
	if s >= 1 {
		return math.Inf(1)
	}
	if s == 0 { //lint:allow floateq zero aggregate load yields zero congestion exactly
		return 0
	}
	return r[i] * p.Model.L(s) / s
}

// OwnDerivs implements core.OwnDeriver:
// C_i = r_i·L(s)/s ⇒ ∂C_i/∂r_i = L(s)/s + r_i·d/ds[L(s)/s], and
// ∂²C_i/∂r_i² = 2·d/ds[L(s)/s] + r_i·d²/ds²[L(s)/s].
func (p ProportionalG) OwnDerivs(r []core.Rate, i int) (float64, float64) {
	s := mm1.Sum(r)
	if s >= 1 {
		return math.Inf(1), math.Inf(1)
	}
	l, lp, lpp := p.Model.L(s), p.Model.LPrime(s), p.Model.LPrime2(s)
	h := l / s                                    // L/s
	hp := (lp*s - l) / (s * s)                    // (L/s)'
	hpp := (lpp*s*s - 2*s*lp + 2*l) / (s * s * s) // (L/s)''
	return h + r[i]*hp, 2*hp + r[i]*hpp
}
