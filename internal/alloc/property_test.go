package alloc

import (
	"math"
	"testing"
	"testing/quick"

	"greednet/internal/core"
	"greednet/internal/mm1"
)

// quickRates turns three raw uint16 seeds into a valid interior rate
// triple with total load below max.
func quickRates(a, b, c uint16, maxLoad float64) []float64 {
	r := []float64{
		0.01 + float64(a)/65536.0,
		0.01 + float64(b)/65536.0,
		0.01 + float64(c)/65536.0,
	}
	sum := r[0] + r[1] + r[2]
	scale := maxLoad * (0.2 + 0.79*float64(int(a)+int(b)+int(c)%3)/196608.0) / sum
	for i := range r {
		r[i] *= scale
	}
	return r
}

func TestQuickFairShareWorkConservation(t *testing.T) {
	f := func(a, b, c uint16) bool {
		r := quickRates(a, b, c, 0.95)
		cg := FairShare{}.Congestion(r)
		total := cg[0] + cg[1] + cg[2]
		want := mm1.G(r[0] + r[1] + r[2])
		return math.Abs(total-want) < 1e-9*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickPermutationEquivariance(t *testing.T) {
	discs := []core.Allocation{FairShare{}, Proportional{}, HOLPriority{Order: SmallestFirst}}
	f := func(a, b, c uint16, swap bool) bool {
		r := quickRates(a, b, c, 0.9)
		rp := []float64{r[1], r[0], r[2]}
		if swap {
			rp = []float64{r[2], r[1], r[0]}
		}
		for _, d := range discs {
			x := d.Congestion(r)
			y := d.Congestion(rp)
			if swap {
				if math.Abs(y[0]-x[2]) > 1e-9 || math.Abs(y[1]-x[1]) > 1e-9 || math.Abs(y[2]-x[0]) > 1e-9 {
					return false
				}
			} else {
				if math.Abs(y[0]-x[1]) > 1e-9 || math.Abs(y[1]-x[0]) > 1e-9 || math.Abs(y[2]-x[2]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickOwnDerivativePositive(t *testing.T) {
	// MAC condition 2 as a property: ∂C_i/∂r_i > 0 everywhere interior.
	f := func(a, b, c uint16, who uint8) bool {
		r := quickRates(a, b, c, 0.9)
		i := int(who) % 3
		for _, d := range []core.OwnDeriver{FairShare{}, Proportional{}, SerialG{Model: mm1.MG1{CV2: 2}}} {
			d1, d2 := d.OwnDerivs(r, i)
			if !(d1 > 0) || !(d2 > 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestQuickSerialDominatedByProportionalForSmallest(t *testing.T) {
	// The smallest sender is always weakly better off (lower congestion)
	// under Fair Share than under FIFO; the largest weakly worse.
	f := func(a, b, c uint16) bool {
		r := quickRates(a, b, c, 0.9)
		fs := FairShare{}.Congestion(r)
		pr := Proportional{}.Congestion(r)
		small, large := 0, 0
		for i := 1; i < 3; i++ {
			if r[i] < r[small] {
				small = i
			}
			if r[i] > r[large] {
				large = i
			}
		}
		return fs[small] <= pr[small]+1e-12 && fs[large] >= pr[large]-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickBlendBetweenEndpoints(t *testing.T) {
	f := func(a, b, c uint16, th8 uint8) bool {
		r := quickRates(a, b, c, 0.9)
		th := float64(th8) / 255
		bl := Blend{Theta: th}.Congestion(r)
		fs := FairShare{}.Congestion(r)
		pr := Proportional{}.Congestion(r)
		for i := range r {
			lo, hi := fs[i], pr[i]
			if lo > hi {
				lo, hi = hi, lo
			}
			if bl[i] < lo-1e-12 || bl[i] > hi+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
