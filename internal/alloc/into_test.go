package alloc

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"greednet/internal/core"
	"greednet/internal/mm1"
)

// legacyFairShareCongestion is the pre-workspace Fair Share evaluation,
// copied verbatim: fresh sort.SliceStable argsort plus fresh output vector
// per call.  The differential tests pin the fast paths bit-for-bit to it.
func legacyFairShareCongestion(r []float64) []float64 {
	n := len(r)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return r[idx[a]] < r[idx[b]] })
	prefix := 0.0
	prevG := 0.0
	c := 0.0
	for k := 1; k <= n; k++ {
		i := idx[k-1]
		xk := float64(n-k+1)*r[i] + prefix
		gk := mm1.G(xk)
		if math.IsInf(gk, 1) {
			for m := k; m <= n; m++ {
				out[idx[m-1]] = math.Inf(1)
			}
			return out
		}
		c += (gk - prevG) / float64(n-k+1)
		out[i] = c
		prevG = gk
		prefix += r[i]
	}
	return out
}

func legacyProportionalCongestion(r []float64) []float64 {
	s := mm1.Sum(r)
	out := make([]float64, len(r))
	if s >= 1 {
		for i := range out {
			out[i] = math.Inf(1)
		}
		return out
	}
	d := 1 - s
	for i, ri := range r {
		out[i] = ri / d
	}
	return out
}

// fuzzRates draws a rate vector exercising ties, near-saturation, and
// outright infeasible regimes — the fast paths must agree everywhere the
// Allocation contract is defined, not just inside D.
func fuzzRates(rng *rand.Rand) []float64 {
	n := 1 + rng.Intn(10)
	r := make([]float64, n)
	scale := []float64{0.3, 0.9, 1.0, 1.7}[rng.Intn(4)]
	for i := range r {
		if rng.Intn(3) == 0 {
			// Quantized: forces exact rate ties across users.
			r[i] = float64(1+rng.Intn(4)) / 16
		} else {
			r[i] = rng.Float64()
		}
		r[i] *= scale / float64(n)
	}
	return r
}

func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func sameBitsVec(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !sameBits(a[i], b[i]) {
			return false
		}
	}
	return true
}

// The workspace fast paths must be bit-identical to the legacy per-call
// implementations over fuzzed rate vectors, both through a reused warm
// workspace and through the nil-workspace slow-path delegation.
func TestCongestionIntoBitIdenticalToLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var ws core.Workspace
	dst := make([]float64, 16)
	for trial := 0; trial < 3000; trial++ {
		r := fuzzRates(rng)
		want := legacyFairShareCongestion(r)
		if got := (FairShare{}).Congestion(r); !sameBitsVec(got, want) {
			t.Fatalf("FairShare.Congestion(%v) = %v, want %v", r, got, want)
		}
		if got := (FairShare{}).CongestionInto(&ws, dst[:len(r)], r); !sameBitsVec(got, want) {
			t.Fatalf("FairShare.CongestionInto(%v) = %v, want %v", r, got, want)
		}
		wantP := legacyProportionalCongestion(r)
		if got := (Proportional{}).CongestionInto(&ws, dst[:len(r)], r); !sameBitsVec(got, wantP) {
			t.Fatalf("Proportional.CongestionInto(%v) = %v, want %v", r, got, wantP)
		}
		// Blend: legacy combined the two legacy vectors pointwise.
		theta := rng.Float64()
		b := Blend{Theta: theta}
		wantB := make([]float64, len(r))
		for i := range wantB {
			wantB[i] = theta*want[i] + (1-theta)*wantP[i]
		}
		if got := b.CongestionInto(&ws, dst[:len(r)], r); !sameBitsVec(got, wantB) {
			t.Fatalf("Blend.CongestionInto(%v) = %v, want %v", r, got, wantB)
		}
	}
}

// The incremental evaluator must reproduce the full evaluation bit for bit
// for every probe rate, insertion position, and tie pattern — this is the
// property that lets BestResponse swap it in without changing any solve.
func TestFairShareBRDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var br FairShareBR
	fs := FairShare{}
	for trial := 0; trial < 1500; trial++ {
		r := fuzzRates(rng)
		n := len(r)
		i := rng.Intn(n)
		br.Reset(r, i)
		for probe := 0; probe < 12; probe++ {
			var x float64
			switch probe % 4 {
			case 0:
				x = 1e-9 + rng.Float64()*(1-2e-9)
			case 1:
				// Exact tie with another user's rate.
				x = r[rng.Intn(n)]
			case 2:
				x = r[i]
			default:
				x = rng.Float64() * 1.5
			}
			rr := core.WithRate(r, i, x)
			wantC := fs.CongestionOf(rr, i)
			if gotC := br.CongestionOf(x); !sameBits(gotC, wantC) {
				t.Fatalf("r=%v i=%d x=%v: CongestionOf = %v, want %v", r, i, x, gotC, wantC)
			}
			want1, want2 := fs.OwnDerivs(rr, i)
			got1, got2 := br.OwnDerivs(x)
			if !sameBits(got1, want1) || !sameBits(got2, want2) {
				t.Fatalf("r=%v i=%d x=%v: OwnDerivs = (%v,%v), want (%v,%v)",
					r, i, x, got1, got2, want1, want2)
			}
		}
	}
}

// OwnDerivsInto and the dispatch helpers must agree with their slow-path
// counterparts bit for bit.
func TestIntoDispatchersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var ws core.Workspace
	dst := make([]float64, 16)
	allocs := []core.Allocation{FairShare{}, Proportional{}, Square{}, Blend{Theta: 0.37}}
	for trial := 0; trial < 500; trial++ {
		r := fuzzRates(rng)
		i := rng.Intn(len(r))
		for _, a := range allocs {
			want := a.Congestion(r)
			if got := CongestionInto(a, &ws, dst[:len(r)], r); !sameBitsVec(got, want) {
				t.Fatalf("%s: CongestionInto = %v, want %v", a.Name(), got, want)
			}
			wantOf := a.CongestionOf(r, i)
			if got := CongestionOfInto(a, &ws, dst[:len(r)], r, i); !sameBits(got, wantOf) {
				t.Fatalf("%s: CongestionOfInto = %v, want %v", a.Name(), got, wantOf)
			}
			d1, d2 := OwnDerivs(a, r, i)
			g1, g2 := OwnDerivsInto(a, &ws, r, i)
			if !sameBits(g1, d1) || !sameBits(g2, d2) {
				t.Fatalf("%s: OwnDerivsInto = (%v,%v), want (%v,%v)", a.Name(), g1, g2, d1, d2)
			}
		}
	}
}

// JacobianInto must reproduce Jacobian bit for bit through a reused
// workspace.
func TestJacobianIntoBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var ws core.Workspace
	for trial := 0; trial < 300; trial++ {
		r := fuzzRates(rng)
		n := len(r)
		dst := make([][]float64, n)
		for i := range dst {
			dst[i] = make([]float64, n)
			for j := range dst[i] {
				dst[i][j] = math.NaN() // stale garbage must be overwritten
			}
		}
		want := FairShare{}.Jacobian(r)
		got := FairShare{}.JacobianInto(&ws, dst, r)
		for i := range want {
			if !sameBitsVec(got[i], want[i]) {
				t.Fatalf("row %d: JacobianInto = %v, want %v", i, got[i], want[i])
			}
		}
	}
}

// The allocs/op regression gates: these are the properties BENCH_hotpath
// and CI enforce, pinned here so `go test` alone catches a regression.
func TestCongestionIntoZeroAllocs(t *testing.T) {
	r := []float64{0.11, 0.07, 0.07, 0.23, 0.02, 0.13, 0.05, 0.17}
	dst := make([]float64, len(r))
	var ws core.Workspace
	FairShare{}.CongestionInto(&ws, dst, r) // warm the workspace
	if got := testing.AllocsPerRun(200, func() {
		FairShare{}.CongestionInto(&ws, dst, r)
	}); got != 0 {
		t.Errorf("FairShare.CongestionInto allocs/op = %v, want 0", got)
	}
	if got := testing.AllocsPerRun(200, func() {
		Proportional{}.CongestionInto(&ws, dst, r)
	}); got != 0 {
		t.Errorf("Proportional.CongestionInto allocs/op = %v, want 0", got)
	}
	Blend{Theta: 0.5}.CongestionInto(&ws, dst, r)
	if got := testing.AllocsPerRun(200, func() {
		Blend{Theta: 0.5}.CongestionInto(&ws, dst, r)
	}); got != 0 {
		t.Errorf("Blend.CongestionInto allocs/op = %v, want 0", got)
	}
}

func TestFairShareBRZeroAllocs(t *testing.T) {
	r := []float64{0.11, 0.07, 0.07, 0.23, 0.02, 0.13, 0.05, 0.17}
	var br FairShareBR
	br.Reset(r, 3) // warm the buffers
	if got := testing.AllocsPerRun(200, func() {
		br.Reset(r, 3)
		br.CongestionOf(0.1)
		br.OwnDerivs(0.1)
	}); got != 0 {
		t.Errorf("warm FairShareBR Reset+probe allocs/op = %v, want 0", got)
	}
}
