// Package network implements the §5.4 generalization: users route Poisson
// streams across several switches, each running its own service
// discipline, and care about their summed congestion c_i = Σ_α c_i^α.
// Following the paper, each switch is analyzed with the Poisson
// approximation (the output of a switch is treated as Poisson with the
// input rate), so every switch crossed by a set of users is an independent
// single-switch model at those users' rates.
//
// A Network implements core.Allocation over the users' rate vector, which
// lets the entire game-theoretic toolkit (Nash solvers, envy, protection,
// Stackelberg) run unchanged on multi-switch topologies.  Note that a
// network allocation is not symmetric across users — routes differ — so
// the single-switch uniqueness/fairness theorems do not transfer verbatim;
// the paper notes that fairness in particular needs a new definition.
package network

import (
	"errors"
	"fmt"
	"math"

	"greednet/internal/core"
	"greednet/internal/mm1"
)

// Network is a fixed topology: each user's stream crosses the switches on
// its route, every switch running the same allocation discipline.
type Network struct {
	// Switches is the number of switches.
	Switches int
	// Routes[i] lists the switch indices user i's stream crosses.
	Routes [][]int
	// Disc is the per-switch allocation function (e.g. alloc.FairShare{}).
	Disc core.Allocation

	// usersAt[α] caches the users crossing switch α.
	usersAt [][]int
}

// New validates the topology and builds the switch occupancy cache.
func New(switches int, routes [][]int, disc core.Allocation) (*Network, error) {
	if switches <= 0 {
		return nil, errors.New("network: need at least one switch")
	}
	if disc == nil {
		return nil, errors.New("network: nil discipline")
	}
	nw := &Network{Switches: switches, Routes: routes, Disc: disc}
	nw.usersAt = make([][]int, switches)
	for i, route := range routes {
		if len(route) == 0 {
			return nil, fmt.Errorf("network: user %d has an empty route", i)
		}
		seen := make(map[int]bool, len(route))
		for _, a := range route {
			if a < 0 || a >= switches {
				return nil, fmt.Errorf("network: user %d routes through invalid switch %d", i, a)
			}
			if seen[a] {
				return nil, fmt.Errorf("network: user %d visits switch %d twice", i, a)
			}
			seen[a] = true
			nw.usersAt[a] = append(nw.usersAt[a], i)
		}
	}
	return nw, nil
}

// Name implements core.Allocation.
func (nw *Network) Name() string {
	return "network(" + nw.Disc.Name() + ")"
}

// switchCongestion returns the per-user congestion vector of switch α
// (indexed like usersAt[α]) for global rates r.
func (nw *Network) switchCongestion(a int, r []core.Rate) []core.Congestion {
	users := nw.usersAt[a]
	local := make([]core.Rate, len(users))
	for k, u := range users {
		local[k] = r[u]
	}
	return nw.Disc.Congestion(local) //lint:allow feasguard per-switch half of the Network Allocation contract, defined (with +Inf) on all of R+^n
}

// Congestion implements core.Allocation: summed per-route congestion.
func (nw *Network) Congestion(r []core.Rate) []core.Congestion {
	out := make([]core.Congestion, len(r))
	for a := 0; a < nw.Switches; a++ {
		if len(nw.usersAt[a]) == 0 {
			continue
		}
		c := nw.switchCongestion(a, r)
		for k, u := range nw.usersAt[a] {
			out[u] += c[k]
		}
	}
	return out
}

// CongestionOf implements core.Allocation.
func (nw *Network) CongestionOf(r []core.Rate, i int) core.Congestion {
	var total core.Congestion
	for _, a := range nw.Routes[i] {
		users := nw.usersAt[a]
		local := make([]core.Rate, len(users))
		pos := -1
		for k, u := range users {
			local[k] = r[u]
			if u == i {
				pos = k
			}
		}
		total += nw.Disc.CongestionOf(local, pos)
		if math.IsInf(total, 1) {
			return total
		}
	}
	return total
}

// ProtectionBound is the network analogue of the single-switch guarantee:
// on each switch α crossed by user i, Fair Share caps the congestion at
// r_i/(1 − n_α·r_i) with n_α the number of users at that switch; the
// route-level bound is the sum.
func (nw *Network) ProtectionBound(i int, ri core.Rate) core.Congestion {
	var total core.Congestion
	for _, a := range nw.Routes[i] {
		total += mm1.ProtectionBound(len(nw.usersAt[a]), ri) //lint:allow feasguard bound formula reported for any rate; +Inf past 1/n_alpha is the honest value
	}
	return total
}

// UsersAt exposes the users crossing switch a (shared slice; do not modify).
func (nw *Network) UsersAt(a int) []int { return nw.usersAt[a] }

// Line builds the classic line topology with k switches: one "long" user
// (index 0) crossing every switch, plus one "cross" user per switch
// crossing only it.  Total users = k + 1.
func Line(k int, disc core.Allocation) (*Network, error) {
	routes := make([][]int, k+1)
	long := make([]int, k)
	for a := 0; a < k; a++ {
		long[a] = a
		routes[a+1] = []int{a}
	}
	routes[0] = long
	return New(k, routes, disc)
}

// Star builds a hub-and-spoke topology: k spoke switches feed one hub
// switch (index k).  User i (i < k) crosses its spoke then the hub, and
// user k is hub-local.  Total users = k + 1, switches = k + 1.
func Star(k int, disc core.Allocation) (*Network, error) {
	routes := make([][]int, k+1)
	for i := 0; i < k; i++ {
		routes[i] = []int{i, k}
	}
	routes[k] = []int{k}
	return New(k+1, routes, disc)
}

// Ring builds a k-switch ring where user i crosses switches i and
// (i+1) mod k — every switch shared by exactly two users.
func Ring(k int, disc core.Allocation) (*Network, error) {
	routes := make([][]int, k)
	for i := 0; i < k; i++ {
		routes[i] = []int{i, (i + 1) % k}
	}
	return New(k, routes, disc)
}
