package network

import (
	"math"
	"testing"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/game"
	"greednet/internal/utility"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, nil, alloc.FairShare{}); err == nil {
		t.Error("zero switches should error")
	}
	if _, err := New(2, [][]int{{0, 5}}, alloc.FairShare{}); err == nil {
		t.Error("invalid switch index should error")
	}
	if _, err := New(2, [][]int{{}}, alloc.FairShare{}); err == nil {
		t.Error("empty route should error")
	}
	if _, err := New(2, [][]int{{0, 0}}, alloc.FairShare{}); err == nil {
		t.Error("repeated switch should error")
	}
	if _, err := New(2, [][]int{{0}}, nil); err == nil {
		t.Error("nil discipline should error")
	}
}

func TestSingleSwitchReducesToAllocation(t *testing.T) {
	r := []float64{0.1, 0.2, 0.3}
	nw, err := New(1, [][]int{{0}, {0}, {0}}, alloc.FairShare{})
	if err != nil {
		t.Fatal(err)
	}
	got := nw.Congestion(r)
	want := alloc.FairShare{}.Congestion(r)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("C[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	for i := range r {
		if math.Abs(nw.CongestionOf(r, i)-want[i]) > 1e-12 {
			t.Errorf("CongestionOf(%d) mismatch", i)
		}
	}
}

func TestLineTopologySums(t *testing.T) {
	// Long user crosses both switches; each switch behaves as a two-user
	// single-switch system.
	nw, err := Line(2, alloc.FairShare{})
	if err != nil {
		t.Fatal(err)
	}
	r := []float64{0.2, 0.3, 0.1} // user 0 long; users 1, 2 local
	got := nw.Congestion(r)
	s1 := alloc.FairShare{}.Congestion([]float64{0.2, 0.3})
	s2 := alloc.FairShare{}.Congestion([]float64{0.2, 0.1})
	if math.Abs(got[0]-(s1[0]+s2[0])) > 1e-12 {
		t.Errorf("long user C = %v, want %v", got[0], s1[0]+s2[0])
	}
	if math.Abs(got[1]-s1[1]) > 1e-12 || math.Abs(got[2]-s2[1]) > 1e-12 {
		t.Errorf("local users C = %v", got)
	}
}

func TestNetworkNashConvergesFairShare(t *testing.T) {
	// §5.4: straightforward generalizations of the single-switch results
	// hold; best-response converges on the line with FS switches.
	nw, err := Line(3, alloc.FairShare{})
	if err != nil {
		t.Fatal(err)
	}
	us := core.Profile{
		utility.NewLinear(1, 0.3), // long user pays congestion on 3 switches
		utility.NewLinear(1, 0.25),
		utility.NewLinear(1, 0.25),
		utility.NewLinear(1, 0.25),
	}
	res, err := game.SolveNash(nw, us, []float64{0.1, 0.1, 0.1, 0.1}, game.NashOptions{})
	if err != nil || !res.Converged {
		t.Fatalf("network Nash failed: %v %+v", err, res)
	}
	if res.MaxGain > 1e-6 {
		t.Errorf("max deviation gain %v", res.MaxGain)
	}
	// The long user faces triple congestion, so sends less than the
	// cross users with comparable preferences.
	if res.R[0] >= res.R[1] {
		t.Errorf("long user should send less: %v", res.R)
	}
}

func TestNetworkProtectionFairShare(t *testing.T) {
	// A naive long user is protected on every FS switch even when every
	// cross user floods.
	nw, err := Line(3, alloc.FairShare{})
	if err != nil {
		t.Fatal(err)
	}
	r := []float64{0.1, 0.9, 0.95, 0.99}
	c := nw.CongestionOf(r, 0)
	bound := nw.ProtectionBound(0, r[0])
	if c > bound+1e-9 {
		t.Errorf("network FS protection violated: %v > %v", c, bound)
	}
	if math.IsInf(c, 1) {
		t.Error("long user's congestion should stay finite under FS")
	}
}

func TestNetworkProportionalHarmsLongUser(t *testing.T) {
	fsNet, _ := Line(3, alloc.FairShare{})
	prNet, _ := Line(3, alloc.Proportional{})
	r := []float64{0.1, 0.8, 0.8, 0.8}
	cf := fsNet.CongestionOf(r, 0)
	cp := prNet.CongestionOf(r, 0)
	if !(cp > 3*cf) {
		t.Errorf("FIFO network should hurt the long user: fifo=%v fs=%v", cp, cf)
	}
}

func TestNetworkOverloadPropagatesInf(t *testing.T) {
	nw, _ := Line(2, alloc.Proportional{})
	r := []float64{0.5, 0.7, 0.1} // switch 0 overloaded
	if c := nw.CongestionOf(r, 0); !math.IsInf(c, 1) {
		t.Errorf("expected +Inf for user crossing an overloaded FIFO switch, got %v", c)
	}
	// The user on the non-overloaded switch stays finite.
	if c := nw.CongestionOf(r, 2); math.IsInf(c, 1) {
		t.Error("user 2's switch is not overloaded")
	}
}

func TestStarTopology(t *testing.T) {
	nw, err := Star(3, alloc.FairShare{})
	if err != nil {
		t.Fatal(err)
	}
	// Hub switch (index 3) carries all four users.
	if got := nw.UsersAt(3); len(got) != 4 {
		t.Errorf("hub should carry 4 users, got %v", got)
	}
	// Spoke users pay spoke + hub congestion; hub-local user only hub.
	r := []float64{0.1, 0.1, 0.1, 0.1}
	c := nw.Congestion(r)
	if c[0] <= c[3] {
		t.Errorf("spoke user should pay more than hub-local: %v", c)
	}
}

func TestStarNashSolves(t *testing.T) {
	nw, err := Star(2, alloc.FairShare{})
	if err != nil {
		t.Fatal(err)
	}
	us := core.Profile{
		utility.NewLinear(1, 0.25),
		utility.NewLinear(1, 0.25),
		utility.NewLinear(1, 0.25),
	}
	res, err := game.SolveNash(nw, us, []float64{0.1, 0.1, 0.1}, game.NashOptions{})
	if err != nil || !res.Converged {
		t.Fatalf("star Nash failed: %v", err)
	}
	// Two-hop spoke users send less than the one-hop hub user.
	if res.R[0] >= res.R[2] {
		t.Errorf("spoke users should send less: %v", res.R)
	}
}

func TestRingTopology(t *testing.T) {
	nw, err := Ring(4, alloc.FairShare{})
	if err != nil {
		t.Fatal(err)
	}
	// Every switch carries exactly two users.
	for a := 0; a < 4; a++ {
		if got := nw.UsersAt(a); len(got) != 2 {
			t.Errorf("switch %d carries %v", a, got)
		}
	}
	// Symmetric rates give symmetric congestion.
	c := nw.Congestion([]float64{0.2, 0.2, 0.2, 0.2})
	for i := 1; i < 4; i++ {
		if math.Abs(c[i]-c[0]) > 1e-12 {
			t.Errorf("ring symmetry broken: %v", c)
		}
	}
	if _, err := Ring(1, alloc.FairShare{}); err == nil {
		t.Error("1-ring should be rejected (duplicate switch on route)")
	}
}

func TestUsersAt(t *testing.T) {
	nw, _ := Line(2, alloc.FairShare{})
	if got := nw.UsersAt(0); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("UsersAt(0) = %v", got)
	}
}
