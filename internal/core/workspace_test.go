package core

import (
	"math/rand"
	"sort"
	"testing"
)

// Ascending must reproduce the unique stable argsort permutation —
// including across ties, where stability is what makes the fast paths
// bit-identical to the sort.SliceStable-based slow paths.
func TestAscendingMatchesSliceStable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var ws Workspace
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(12)
		keys := make([]float64, n)
		for i := range keys {
			// Coarse quantization forces frequent ties.
			keys[i] = float64(rng.Intn(5)) / 10
		}
		want := make([]int, n)
		for i := range want {
			want[i] = i
		}
		sort.SliceStable(want, func(a, b int) bool { return keys[want[a]] < keys[want[b]] })
		got := ws.Ascending(keys)
		if len(got) != len(want) {
			t.Fatalf("trial %d: len %d, want %d", trial, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("trial %d: keys %v: got %v, want %v", trial, keys, got, want)
			}
		}
	}
}

func TestWorkspaceNilSafe(t *testing.T) {
	var ws *Workspace
	idx := ws.Ascending([]float64{0.3, 0.1, 0.2})
	if idx[0] != 1 || idx[1] != 2 || idx[2] != 0 {
		t.Fatalf("nil-workspace Ascending = %v", idx)
	}
	if got := len(ws.VecA(4)); got != 4 {
		t.Fatalf("nil-workspace VecA len = %d", got)
	}
	if got := len(ws.VecB(7)); got != 7 {
		t.Fatalf("nil-workspace VecB len = %d", got)
	}
}

// Scratch vectors must be independent of each other and resize without
// losing capacity.
func TestWorkspaceVecsIndependent(t *testing.T) {
	var ws Workspace
	a := ws.VecA(3)
	b := ws.VecB(3)
	for i := range a {
		a[i] = 1
		b[i] = 2
	}
	for i := range a {
		if ApproxEq(a[i], b[i], 0) {
			t.Fatalf("VecA and VecB alias at %d", i)
		}
	}
	big := ws.VecA(8)
	if len(big) != 8 {
		t.Fatalf("VecA regrow len = %d", len(big))
	}
	small := ws.VecA(2)
	if len(small) != 2 || cap(small) < 2 {
		t.Fatalf("VecA shrink len=%d cap=%d", len(small), cap(small))
	}
}

// A warm workspace must service Ascending and the scratch vectors without
// allocating — this is the property every fast path builds on.
func TestWorkspaceZeroAllocSteadyState(t *testing.T) {
	var ws Workspace
	keys := []float64{0.4, 0.1, 0.1, 0.3, 0.2, 0.25, 0.05, 0.15}
	ws.Ascending(keys) // warm
	ws.VecA(len(keys))
	ws.VecB(len(keys))
	allocs := testing.AllocsPerRun(100, func() {
		ws.Ascending(keys)
		ws.VecA(len(keys))
		ws.VecB(len(keys))
	})
	if allocs != 0 {
		t.Fatalf("warm workspace allocated %v per run, want 0", allocs)
	}
}
