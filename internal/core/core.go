// Package core defines the central model abstractions of the greednet
// library: allocation functions C(r) induced by switch service disciplines,
// utility functions U(r, c) of selfish users, and the vocabulary shared by
// the game solvers, dynamics, mechanisms, and simulators.
//
// The model follows Shenker, "Making Greed Work in Networks" (SIGCOMM '94):
// a single exponential server of rate 1 is shared by N Poisson sources with
// rates r_i; a service discipline determines each user's average queue
// length c_i = C_i(r); each user i holds a private utility U_i(r_i, c_i),
// increasing in r_i and decreasing in c_i, and adjusts r_i selfishly.
package core

import "math"

// Rate is the dimension of a Poisson arrival rate r_i (or a total rate
// Σr), measured in units of the server rate, so the feasibility region is
// Σr < 1.  Congestion is the dimension of an average queue length c_i.
//
// Both are declared as type aliases of float64, not defined types: the
// alias keeps every rate/congestion vector assignment- and
// arithmetic-compatible with the numeric kernels (no conversion copies on
// hot paths, no interface breakage), while go/types materializes the alias
// (types.Alias, default since Go 1.23), so greedlint's dimcheck analyzer
// can still see the declared dimension of every expression and flag
// rate/congestion mixes the compiler cannot.  Convert through float64(x)
// to deliberately erase the dimension, or annotate //lint:allow dimcheck.
type (
	// Rate is a throughput demand on the shared server, Σr < 1 feasible.
	Rate = float64
	// Congestion is an average queue length C_i(r).
	Congestion = float64
)

// Feasible reports whether the rate vector lies inside the M/M/1
// feasibility region: every r_i > 0 (and NaN-free) with Σ r_i < 1.  It is
// the canonical guard the greedlint feasguard analyzer looks for in front
// of unprotected g(x)/congestion evaluations (mm1.InDomain is equivalent
// and also recognized).
func Feasible(r []Rate) bool {
	var s Rate
	for _, v := range r {
		if v <= 0 || math.IsNaN(v) {
			return false
		}
		s += v
	}
	return s < 1
}

// Allocation is an allocation function C: rate vector → congestion vector,
// induced by a (work-conserving, symmetric) switch service discipline.
//
// Implementations must be symmetric (permutation equivariant) and defined on
// all of R⁺ⁿ: outside the natural domain D = {r_i > 0, Σr < 1} the returned
// congestions may be +Inf, as the paper requires for the learning analysis.
type Allocation interface {
	// Name identifies the discipline, e.g. "fair-share" or "proportional".
	Name() string
	// Congestion returns the congestion vector C(r).  The input must not be
	// modified; the output is freshly allocated.
	Congestion(r []Rate) []Congestion
	// CongestionOf returns C_i(r) alone.  It is equivalent to
	// Congestion(r)[i] but may be cheaper.
	CongestionOf(r []Rate, i int) Congestion
}

// OwnDeriver is implemented by allocations that provide analytic first and
// second derivatives of C_i with respect to the user's own rate r_i.
// Solvers fall back to finite differences when unavailable.
type OwnDeriver interface {
	// OwnDerivs returns ∂C_i/∂r_i and ∂²C_i/∂r_i² at r.
	OwnDerivs(r []Rate, i int) (d1, d2 float64)
}

// Jacobianer is implemented by allocations that provide an analytic
// Jacobian ∂C_i/∂r_j.
type Jacobianer interface {
	// Jacobian returns the matrix J with J[i][j] = ∂C_i/∂r_j at r.
	Jacobian(r []Rate) [][]float64
}

// Utility is a user's utility function over (rate, congestion) allocations,
// in the paper's admissible set AU: C², strictly increasing in r, strictly
// decreasing in c, with convex preferences.  Utilities are ordinal — all
// results must be invariant under monotone transformations.
type Utility interface {
	// Value returns U(r, c).  Implementations must map c = +Inf to −Inf
	// (infinite congestion is the worst possible outcome) so that
	// out-of-domain probes made by optimizers are well ordered.
	Value(r Rate, c Congestion) float64
	// Gradient returns (∂U/∂r, ∂U/∂c) with ∂U/∂r > 0 and ∂U/∂c < 0 for
	// finite c.
	Gradient(r Rate, c Congestion) (dr, dc float64)
}

// Profile is one utility per user.
type Profile []Utility

// MarginalRate returns M(r, c) = (∂U/∂r)/(∂U/∂c), the ratio of marginal
// utilities from the paper's first-derivative conditions.  It is negative
// for utilities in AU.
func MarginalRate(u Utility, r Rate, c Congestion) float64 {
	dr, dc := u.Gradient(r, c)
	return dr / dc
}

// Point is an operating point: rates with the congestions some allocation
// assigns to them.
type Point struct {
	R []Rate
	C []Congestion
}

// At evaluates the allocation at r and bundles the result.
func At(a Allocation, r []Rate) Point {
	return Point{R: append([]Rate(nil), r...), C: a.Congestion(r)}
}

// UtilityValues returns each user's utility at the point.
func (p Point) UtilityValues(us Profile) []float64 {
	out := make([]float64, len(p.R))
	for i, u := range us {
		out[i] = u.Value(p.R[i], p.C[i])
	}
	return out
}

// WithRate returns a copy of r with element i replaced by x — the paper's
// r|ⁱx notation.
func WithRate(r []Rate, i int, x Rate) []Rate {
	out := append([]Rate(nil), r...)
	out[i] = x
	return out
}

// Clamp returns x restricted to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// DefaultTol is the repository-wide default comparison tolerance, sized
// for quantities solved to the game solvers' convergence thresholds.  Use
// it with ApproxEq when no tighter context-specific tolerance applies.
const DefaultTol = 1e-9

// ApproxEq reports whether a and b agree to within tol, measured
// absolutely near zero and relatively otherwise (|a−b| ≤ tol·max(1, |a|,
// |b|)).  It is the sanctioned way to compare floating-point quantities —
// the greedlint floateq analyzer flags raw == / != on floats.  Exact
// equality (including matching infinities) always passes.
func ApproxEq(a, b, tol float64) bool {
	if a == b {
		return true // fast path; also the only equality NaN-free Inf admits
	}
	scale := 1.0
	if aa := math.Abs(a); aa > scale {
		scale = aa
	}
	if ab := math.Abs(b); ab > scale {
		scale = ab
	}
	return math.Abs(a-b) <= tol*scale
}

// ApproxZero reports whether |x| ≤ tol.
func ApproxZero(x, tol float64) bool {
	return math.Abs(x) <= tol
}

// ApproxEqSlice reports whether two vectors agree elementwise to within
// tol under ApproxEq; slices of different lengths never agree.
func ApproxEqSlice(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !ApproxEq(a[i], b[i], tol) {
			return false
		}
	}
	return true
}

// IsFiniteVec reports whether every component is finite.
func IsFiniteVec(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}
