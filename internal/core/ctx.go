package core

import (
	"context"
	"errors"
)

// CtxError is the typed cancellation error returned by every long-running
// loop in the tree (the Nash solvers, the dynamics iterators, the sweeps,
// the DES engines, the parallel pool).  It distinguishes "the caller gave
// up" from "the computation diverged": a solver that runs out of MaxIter
// reports Converged == false with a nil (or domain-specific) error, while
// a solver stopped by its context returns ErrCanceled or ErrDeadline.
//
// Both sentinels unwrap to the corresponding context error, so
// errors.Is(err, context.DeadlineExceeded) and errors.Is(err,
// core.ErrDeadline) agree.
type CtxError struct {
	reason string
	cause  error
}

// Error implements error.
func (e *CtxError) Error() string { return e.reason }

// Unwrap links the sentinel to its context cause.
func (e *CtxError) Unwrap() error { return e.cause }

var (
	// ErrCanceled reports a run stopped by context cancellation.
	ErrCanceled = &CtxError{reason: "core: run canceled", cause: context.Canceled}
	// ErrDeadline reports a run stopped by a context deadline.
	ErrDeadline = &CtxError{reason: "core: run exceeded its deadline", cause: context.DeadlineExceeded}
)

// CtxErr polls a context without blocking: nil while ctx is live (or nil,
// or uncancelable), otherwise the matching typed sentinel.  The
// uncancelable fast path (ctx.Done() == nil, e.g. context.Background())
// costs one comparison, so hot loops can call it every iteration.
func CtxErr(ctx context.Context) error {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		if errors.Is(ctx.Err(), context.DeadlineExceeded) { //lint:allow allocfree runs once, after the context has already fired; the live-context path above is allocation-free
			return ErrDeadline
		}
		return ErrCanceled
	default:
		return nil
	}
}
