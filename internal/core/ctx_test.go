package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestCtxErrLiveAndNil(t *testing.T) {
	if err := CtxErr(nil); err != nil {
		t.Errorf("nil ctx: got %v, want nil", err)
	}
	if err := CtxErr(context.Background()); err != nil {
		t.Errorf("background ctx: got %v, want nil", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := CtxErr(ctx); err != nil {
		t.Errorf("live cancelable ctx: got %v, want nil", err)
	}
}

func TestCtxErrCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := CtxErr(ctx)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled ctx: got %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("ErrCanceled should unwrap to context.Canceled")
	}
	if errors.Is(err, ErrDeadline) {
		t.Errorf("canceled ctx must not read as a deadline")
	}
}

func TestCtxErrDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	err := CtxErr(ctx)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("expired ctx: got %v, want ErrDeadline", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("ErrDeadline should unwrap to context.DeadlineExceeded")
	}
	if errors.Is(err, ErrCanceled) {
		t.Errorf("deadline must not read as a plain cancellation")
	}
}
