package core

import (
	"math"
	"testing"
	"testing/quick"
)

// stubAlloc is a minimal allocation for facade-level tests.
type stubAlloc struct{}

func (stubAlloc) Name() string { return "stub" }
func (stubAlloc) Congestion(r []float64) []float64 {
	out := make([]float64, len(r))
	for i, v := range r {
		out[i] = 2 * v
	}
	return out
}
func (s stubAlloc) CongestionOf(r []float64, i int) float64 { return 2 * r[i] }

// stubUtility is linear U = r − c.
type stubUtility struct{}

func (stubUtility) Value(r, c float64) float64 {
	if math.IsInf(c, 1) {
		return math.Inf(-1)
	}
	return r - c
}
func (stubUtility) Gradient(r, c float64) (float64, float64) { return 1, -1 }

func TestMarginalRate(t *testing.T) {
	if m := MarginalRate(stubUtility{}, 0.3, 0.5); m != -1 {
		t.Errorf("MarginalRate = %v, want -1", m)
	}
}

func TestAtBundlesPoint(t *testing.T) {
	r := []float64{0.1, 0.2}
	p := At(stubAlloc{}, r)
	if p.C[0] != 0.2 || p.C[1] != 0.4 {
		t.Errorf("At congestion = %v", p.C)
	}
	// The bundled rates must be a copy.
	p.R[0] = 99
	if r[0] != 0.1 {
		t.Error("At must copy the rate vector")
	}
}

func TestUtilityValues(t *testing.T) {
	p := Point{R: []float64{0.3, 0.5}, C: []float64{0.1, 0.2}}
	us := Profile{stubUtility{}, stubUtility{}}
	v := p.UtilityValues(us)
	if math.Abs(v[0]-0.2) > 1e-15 || math.Abs(v[1]-0.3) > 1e-15 {
		t.Errorf("UtilityValues = %v", v)
	}
}

func TestWithRate(t *testing.T) {
	r := []float64{1, 2, 3}
	w := WithRate(r, 1, 9)
	if w[1] != 9 || r[1] != 2 {
		t.Errorf("WithRate mutated input or failed: %v %v", w, r)
	}
}

func TestWithRateQuickNoAlias(t *testing.T) {
	f := func(a, b, c float64, which uint8, val float64) bool {
		r := []float64{a, b, c}
		i := int(which) % 3
		orig := append([]float64(nil), r...)
		w := WithRate(r, i, val)
		for k := range r {
			if r[k] != orig[k] {
				return false
			}
			if k != i && w[k] != r[k] {
				return false
			}
		}
		return w[i] == val || (math.IsNaN(val) && math.IsNaN(w[i]))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp wrong")
	}
}

func TestIsFiniteVec(t *testing.T) {
	if !IsFiniteVec([]float64{1, 2}) {
		t.Error("finite vec misflagged")
	}
	if IsFiniteVec([]float64{1, math.Inf(1)}) || IsFiniteVec([]float64{math.NaN()}) {
		t.Error("non-finite vec accepted")
	}
	if !IsFiniteVec(nil) {
		t.Error("empty vec is vacuously finite")
	}
}
