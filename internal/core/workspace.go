package core

import "sort"

// Workspace is reusable scratch memory for the allocation fast paths.  A
// solver owns one workspace, threads it through every CongestionInto /
// OwnDerivsInto / JacobianInto call it makes, and thereby amortizes every
// sort permutation and intermediate vector across the whole solve: after
// the first call on a given problem size, the hot path performs zero heap
// allocations.
//
// A nil *Workspace is valid everywhere one is accepted and means "allocate
// transient scratch": the slow paths delegate to the fast paths with a nil
// workspace, which is what makes the two bit-identical by construction.
//
// Workspaces are not safe for concurrent use; parallel solvers own one
// workspace per worker.  Slices returned by workspace methods (and the dst
// buffers passed alongside them) are invalidated by the next call that
// touches the same scratch — callers must copy anything they keep.
type Workspace struct {
	sorter argSorter
	vecA   []float64
	vecB   []float64
}

// argSorter is the workspace-resident sort.Interface behind Ascending.
// Keeping it a struct field (rather than building a closure per call) lets
// sort.Stable receive an interface without allocating: the *argSorter
// pointer fits the interface word directly.
type argSorter struct {
	keys []float64
	idx  []int
}

func (s *argSorter) Len() int           { return len(s.idx) }
func (s *argSorter) Less(a, b int) bool { return s.keys[s.idx[a]] < s.keys[s.idx[b]] }
func (s *argSorter) Swap(a, b int)      { s.idx[a], s.idx[b] = s.idx[b], s.idx[a] }

// Ascending returns the permutation that stably sorts keys ascending —
// idx[k] is the original index of the k-th smallest key, ties in original
// order.  The stable permutation of a given key vector is unique, so the
// result is bit-identical to a sort.SliceStable argsort of the same keys.
// The returned slice is workspace-owned scratch, valid until the next
// Ascending call; keys is read but never retained.
func (w *Workspace) Ascending(keys []float64) []int {
	if w == nil {
		w = new(Workspace) //lint:allow allocfree nil-workspace transient-scratch fallback; hot callers pass a real workspace (pinned by the allocs_per_op gate)
	}
	n := len(keys)
	if cap(w.sorter.idx) < n {
		w.sorter.idx = make([]int, n)
	}
	idx := w.sorter.idx[:n]
	for i := range idx {
		idx[i] = i
	}
	w.sorter.idx = idx
	w.sorter.keys = keys
	sort.Stable(&w.sorter)
	w.sorter.keys = nil // do not retain the caller's slice
	return idx
}

// VecA returns the workspace's first float64 scratch vector, resized to n.
// Contents are unspecified (callers overwrite).  Valid until the next VecA
// call on the same workspace.
func (w *Workspace) VecA(n int) []float64 {
	if w == nil {
		return make([]float64, n) //lint:allow allocfree nil-workspace transient-scratch fallback; hot callers pass a real workspace (pinned by the allocs_per_op gate)
	}
	if cap(w.vecA) < n {
		w.vecA = make([]float64, n)
	}
	w.vecA = w.vecA[:n]
	return w.vecA
}

// VecB is a second, independent scratch vector for callers that need two
// (e.g. Blend, which evaluates both endpoint allocations).
func (w *Workspace) VecB(n int) []float64 {
	if w == nil {
		return make([]float64, n)
	}
	if cap(w.vecB) < n {
		w.vecB = make([]float64, n)
	}
	w.vecB = w.vecB[:n]
	return w.vecB
}

// AllocationInto is the zero-allocation fast path of an Allocation.  The
// contract mirrors Congestion exactly — CongestionInto(ws, dst, r) writes
// C(r) into dst and returns it, producing bit-identical values to
// Congestion(r) for every input (the slow path is required to delegate to
// the fast path, so there is a single source of arithmetic truth).
//
// dst must have len(r) elements and must not alias r or the workspace's
// own scratch.  ws may be nil (transient scratch is allocated).
type AllocationInto interface {
	Allocation
	// CongestionInto computes C(r) into dst and returns dst.
	CongestionInto(ws *Workspace, dst []Congestion, r []Rate) []Congestion
}

// WorkspaceOwnDeriver is the scratch-reusing analogue of OwnDeriver,
// bit-identical to OwnDerivs by the same delegation contract.
type WorkspaceOwnDeriver interface {
	// OwnDerivsInto returns ∂C_i/∂r_i and ∂²C_i/∂r_i² at r, using ws for
	// any intermediate vectors.
	OwnDerivsInto(ws *Workspace, r []Rate, i int) (d1, d2 float64)
}

// WorkspaceJacobianer is the scratch-reusing analogue of Jacobianer.  dst
// must hold len(r) rows of len(r) columns; rows are fully overwritten.
type WorkspaceJacobianer interface {
	// JacobianInto writes the matrix J[i][j] = ∂C_i/∂r_j into dst.
	JacobianInto(ws *Workspace, dst [][]float64, r []Rate) [][]float64
}
