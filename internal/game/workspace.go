package game

import (
	"greednet/internal/alloc"
	"greednet/internal/core"
)

// Workspace is the solver-owned scratch behind the WS entry points
// (BestResponseWS, BestResponseNewtonWS, SolveNashWS).  One workspace
// amortizes every per-call allocation of a solve — the r|ⁱx probe vector,
// the congestion destination, the Nash iterate buffers, the allocation
// layer's sort permutations, and the incremental Fair Share evaluator —
// so a warm best-response search performs zero heap allocations.
//
// A nil *Workspace means "allocate transient scratch"; the plain entry
// points (BestResponse, SolveNash, …) delegate with nil, which keeps one
// arithmetic path and makes WS results bit-identical by construction.
// Workspaces are not safe for concurrent use: parallel drivers own one per
// solve (MultiStartNash) or per worker.
type Workspace struct {
	rr   []float64 // the r|ⁱx probe vector of a best-response search
	cong []float64 // congestion destination for AllocationInto
	iter []float64 // Nash fixed-point iterate
	next []float64 // Jacobi round buffer
	aws  core.Workspace
	fsbr alloc.FairShareBR
}

// NewWorkspace returns an empty workspace; buffers grow on first use and
// are reused thereafter.
func NewWorkspace() *Workspace { return &Workspace{} }

// growFloats resizes buf to n, reusing capacity when possible.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func (w *Workspace) rates(n int) []float64 {
	w.rr = growFloats(w.rr, n)
	return w.rr
}

func (w *Workspace) congestion(n int) []float64 {
	w.cong = growFloats(w.cong, n)
	return w.cong
}

func (w *Workspace) iterate(n int) []float64 {
	w.iter = growFloats(w.iter, n)
	return w.iter
}

func (w *Workspace) nextVec(n int) []float64 {
	w.next = growFloats(w.next, n)
	return w.next
}
