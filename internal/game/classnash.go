package game

import (
	"context"
	"math"

	"greednet/internal/alloc"
	"greednet/internal/core"
)

// ClassSummation selects the arithmetic a class solve runs on.
type ClassSummation int

const (
	// ClassFast (the default) runs O(K) class arithmetic per step under
	// the DESIGN.md §13 summation-order contract: a class of multiplicity
	// m contributes fl(float64(m)·ρ) per prefix advance and one chain
	// step at its first member's position.  At K = N (all multiplicities
	// one) the contract degenerates to the per-user expression sequence,
	// so results are bit-identical to SolveNashWS by construction; at
	// m > 1 they agree to rounding.
	ClassFast ClassSummation = iota
	// ClassMirror expands the game internally and drives the per-user
	// machinery (BestResponseWS and friends) with class-synchronized
	// updates: every member of a class moves together, but all sums run
	// in expanded per-user order.  Under the Jacobi scheme this is
	// bit-identical to SolveNashWS whenever the start is symmetric within
	// classes (all members of a class share one best-response problem),
	// which is how the K = 1 differential tests pin bit-equality.  Costs
	// O(N) memory and time — the fidelity reference, not the fast path.
	ClassMirror
)

// ClassNashOptions configures SolveNashClass.  The embedded NashOptions
// keep their meanings with Free read per class (length K).
type ClassNashOptions struct {
	NashOptions
	// Summation selects ClassFast (default) or ClassMirror arithmetic.
	// Disciplines without a class-aggregated evaluator (anything other
	// than FairShare/Proportional/Square) always run mirror-expanded.
	Summation ClassSummation
}

// ClassNashResult reports a class-aggregated Nash solve.  R and C are per
// class, in the game's canonical class order; expand them with
// ClassGame.ExpandVec when per-user vectors are needed.
type ClassNashResult struct {
	// R and C are the final per-class rates and congestions.
	R, C []float64
	// Converged is true when the rate change fell below Tol.
	Converged bool
	// Iters is the number of best-response rounds performed.
	Iters int
	// MaxGain is the largest remaining per-class unilateral deviation
	// gain at R (audited at each class's first member).
	MaxGain float64
}

// ClassWorkspace owns every scratch buffer a class-aggregated solve
// needs.  The zero value is ready; buffers grow to the largest K (and,
// on mirror/generic paths only, the largest N) seen and are then reused
// allocation-free, the same contract as Workspace.
type ClassWorkspace struct {
	iterBuf, nextBuf []float64
	countsBuf        []int
	startsBuf        []int
	freeBuf          []bool
	cdst             []float64

	cfsbr classFairShareBR
	eval  classEval

	// Mirror/generic paths expand into per-user buffers and reuse the
	// per-user solver workspace.  Never touched by the fast path, so a
	// fast N = 10^6 solve stays at O(K) memory.
	xr  []float64
	xus core.Profile
	g   Workspace
}

// NewClassWorkspace returns an empty workspace; buffers materialize on
// first use.
func NewClassWorkspace() *ClassWorkspace { return &ClassWorkspace{} }

func (ws *ClassWorkspace) floats(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func (ws *ClassWorkspace) ints(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func (ws *ClassWorkspace) bools(n int) []bool {
	if cap(ws.freeBuf) < n {
		ws.freeBuf = make([]bool, n)
	}
	ws.freeBuf = ws.freeBuf[:n]
	return ws.freeBuf
}

// classEval is the closure-free payoff evaluator the class grid search
// maximizes: a concrete struct with a direct method instead of a captured
// closure, so the //lint:hotpath allocfree contract holds without any
// audited exceptions.
type classEval struct {
	kind   int // 0 FairShare, 1 Proportional, 2 Square
	u      core.Utility
	fs     *classFairShareBR
	r      []core.Rate
	counts []int
	d      int
}

func (e *classEval) payoff(x float64) float64 {
	switch e.kind {
	case 0:
		return e.u.Value(x, e.fs.CongestionOf(x))
	case 1:
		return e.u.Value(x, classPropCongestionOf(e.r, e.counts, e.d, x))
	default:
		return e.u.Value(x, x*x)
	}
}

// maximizeGridEval is maximizeGrid specialized to the concrete evaluator
// — expression-for-expression the same search (bit-identical probe
// sequence), with direct method calls in place of the func value so the
// hot path stays free of capturing closures.
//
//lint:hotpath
func maximizeGridEval(e *classEval, a, b float64, n int, tol float64) (float64, float64) {
	h := (b - a) / float64(n)
	bestI, bestF := 0, math.Inf(-1)
	for i := 0; i <= n; i++ {
		if v := e.payoff(a + float64(i)*h); v > bestF {
			bestF, bestI = v, i
		}
	}
	lo := a + float64(bestI-1)*h
	if bestI == 0 {
		lo = a
	}
	hi := a + float64(bestI+1)*h
	if bestI == n {
		hi = b
	}
	const invPhi = 0.6180339887498949
	c := hi - invPhi*(hi-lo)
	d := lo + invPhi*(hi-lo)
	fc, fd := e.payoff(c), e.payoff(d)
	for hi-lo > tol {
		if fc > fd {
			hi, d, fd = d, c, fc
			c = hi - invPhi*(hi-lo)
			fc = e.payoff(c)
		} else {
			lo, c, fc = c, d, fd
			d = lo + invPhi*(hi-lo)
			fd = e.payoff(d)
		}
	}
	x := lo + (hi-lo)/2
	return x, e.payoff(x)
}

// classBestResponseWS maximizes class d's (first member's) payoff over
// its own rate on the fast class arithmetic.  Only the three aggregated
// disciplines reach it; the solver routes everything else through the
// mirror-expanded per-user path.
//
// When counts[d] > 1 the single-deviator optimum is applied to every
// member of the class at once, so an unrestricted search diverges: the
// moment one class vacates capacity, a lone deviator's best response can
// rationally jump far above the pack, and the whole class following en
// masse floods the network.  The search interval is therefore clamped to
// twice the current top rate (the finite-N analogue of the fluid
// solver's default ŷ bound) and to class-aggregate feasibility — the
// whole class moving to x must keep total load below capacity.  Neither
// clamp binds at a best-response fixed point (a fixed point has
// br = r_d ≤ top < 2·top and total load < 1), and a class with
// multiplicity one keeps the caller's exact bounds, preserving the
// K = N bit-equality with the per-user solver.
//
//lint:hotpath
func classBestResponseWS(ws *ClassWorkspace, kind int, u core.Utility, r []core.Rate, counts []int, d int, opt BROptions) (x, val float64) {
	opt = opt.withDefaults()
	if counts[d] > 1 {
		top, others := 0.0, 0.0
		for j := range r {
			if float64(r[j]) > top {
				top = float64(r[j])
			}
			if j != d {
				others += float64(counts[j]) * float64(r[j])
			}
		}
		hi := opt.Hi
		if c := 2 * top; c < hi {
			hi = c
		}
		if c := (1 - others) / float64(counts[d]); c < hi {
			hi = c
		}
		if floor := 2 * opt.Lo; hi < floor {
			hi = floor
		}
		opt.Hi = hi
		if kind == 1 {
			return classPropSymBR(ws, u, r, counts, d, opt)
		}
	}
	e := &ws.eval
	e.kind, e.u, e.r, e.counts, e.d = kind, u, r, counts, d
	if kind == 0 {
		ws.cfsbr.Reset(r, counts, d)
		e.fs = &ws.cfsbr
	}
	return maximizeGridEval(e, opt.Lo, opt.Hi, opt.GridPoints, opt.Tol)
}

// classPropSymBR returns the within-class self-consistent best response
// under the proportional allocation: the symmetric rate x at which one
// member's single-deviator optimum, with its classmates also at x,
// equals x.  The proportional discipline has no own-rate insulation — a
// member's congestion reacts to the class total, not its own rate — so
// the plain single-deviator update amplifies through the multiplicity
// (aggregate slope ≈ −γ'·m) and best-response iteration cycles for any
// fixed damping.  Solving the symmetric fixed point per update removes
// the amplification while keeping exactly the same equilibria: at the
// fixed point a lone deviation from the class profile is already
// optimal, which is the Nash condition, and classes of multiplicity one
// never reach this path so the K = N per-user arithmetic is untouched.
//
// ψ(x) = BR(x) − x is monotone decreasing (more classmate load lowers
// the member optimum), so bisection over the clamped interval is safe;
// ψ < 0 everywhere collapses to Lo (the class exits) and ψ > 0
// everywhere to Hi (the feasibility clamp binds).
//
//lint:hotpath
func classPropSymBR(ws *ClassWorkspace, u core.Utility, r []core.Rate, counts []int, d int, opt BROptions) (x, val float64) {
	e := &ws.eval
	e.kind, e.u, e.r, e.counts, e.d = 1, u, r, counts, d
	old := r[d]
	lo, hi := opt.Lo, opt.Hi
	for it := 0; it < 64 && hi-lo > opt.Tol; it++ {
		mid := lo + (hi-lo)/2
		r[d] = mid
		br, _ := maximizeGridEval(e, opt.Lo, opt.Hi, opt.GridPoints, opt.Tol)
		if br > mid {
			lo = mid
		} else {
			hi = mid
		}
	}
	x = lo + (hi-lo)/2
	r[d] = x
	_, val = maximizeGridEval(e, opt.Lo, opt.Hi, opt.GridPoints, opt.Tol)
	r[d] = old
	return x, val
}

// classCongestionInto writes the per-class congestion of the point r on
// the fast class arithmetic.
//
//lint:hotpath
func classCongestionInto(ws *ClassWorkspace, kind int, dst []core.Congestion, r []core.Rate, counts []int) {
	switch kind {
	case 0:
		ws.cfsbr.classFairShareCongestion(dst, r, counts)
	case 1:
		classPropCongestion(dst, r, counts)
	default:
		for j, rj := range r {
			dst[j] = rj * rj
		}
	}
}

// fastKind maps an allocation to its fast class evaluator, or −1 when no
// class-aggregated arithmetic exists and the solve must mirror-expand.
func fastKind(a core.Allocation) int {
	switch a.(type) {
	case alloc.FairShare:
		return 0
	case alloc.Proportional:
		return 1
	case alloc.Square:
		return 2
	}
	return -1
}

// SolveNashClass runs class-aggregated best-response iteration on cg from
// its own rates.  See SolveNashClassWS.
func SolveNashClass(a core.Allocation, cg ClassGame, opt ClassNashOptions) (ClassNashResult, error) {
	return SolveNashClassWS(context.Background(), nil, a, cg, nil, opt)
}

// SolveNashClassWS is the workspace form: r0 (nil means cg's own rates)
// is the per-class starting vector, ws may be nil for transient scratch,
// and the returned R/C are freshly allocated.  Results are bit-identical
// to SolveNashClassInto, which it delegates to.
func SolveNashClassWS(ctx context.Context, ws *ClassWorkspace, a core.Allocation, cg ClassGame, r0 []core.Rate, opt ClassNashOptions) (ClassNashResult, error) {
	if ws == nil {
		ws = NewClassWorkspace()
	}
	if r0 == nil {
		r0 = cg.Rates()
	}
	k := cg.K()
	return SolveNashClassInto(ctx, ws, a, cg, r0, opt, make([]float64, k), make([]float64, k))
}

// SolveNashClassInto is the zero-allocation core: rdst and cdst (length
// K) receive the final per-class rates and congestions and are returned
// as the result's R and C.  With a warm workspace and a fast-path
// discipline the steady state performs no heap allocation — the
// BENCH_classes.json gate pins allocs/op = 0 at N = 10^6, K = 8.
//
// The iteration structure mirrors SolveNashWS round for round: the same
// scheme semantics, damping expression, ∞-norm convergence test, ctx
// poll per round and per audit step, and the same post-convergence
// deviation audit — so at K = N the fast path reproduces the exact
// solver bit for bit, rounds included.
func SolveNashClassInto(ctx context.Context, ws *ClassWorkspace, a core.Allocation, cg ClassGame, r0 []core.Rate, opt ClassNashOptions, rdst, cdst []float64) (ClassNashResult, error) {
	k := cg.K()
	if len(r0) != k || len(rdst) != k || len(cdst) != k {
		return ClassNashResult{}, ErrNoProfile
	}
	if k == 0 {
		return ClassNashResult{}, ErrBadClass
	}
	kind := fastKind(a)
	mirror := opt.Summation == ClassMirror || kind < 0
	if mirror {
		// The mirror path allocates by design (it runs the per-user
		// solver on the expansion); only the fast core below is on the
		// zero-allocation contract.
		return solveNashClassMirror(ctx, ws, a, cg, r0, opt, rdst, cdst)
	}
	return solveNashClassFast(ctx, ws, kind, cg, r0, opt, rdst, cdst)
}

// solveNashClassFast is the zero-allocation fast core behind
// SolveNashClassInto: all state lives in the workspace and the per-class
// dsts, so the steady state performs no heap allocation.
//
//lint:hotpath
func solveNashClassFast(ctx context.Context, ws *ClassWorkspace, kind int, cg ClassGame, r0 []core.Rate, opt ClassNashOptions, rdst, cdst []float64) (ClassNashResult, error) {
	k := cg.K()
	// Defaults, with Free staged in workspace scratch instead of
	// NashOptions.withDefaults's fresh slice.
	if opt.MaxIter <= 0 {
		opt.MaxIter = 500
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-7
	}
	if opt.Damping <= 0 || opt.Damping > 1 {
		opt.Damping = 1
	}
	free := opt.Free
	if free == nil {
		free = ws.bools(k)
		for j := range free {
			free[j] = true
		}
	}

	counts := ws.ints(&ws.countsBuf, k)
	for j, c := range cg.Classes {
		counts[j] = c.Count
	}
	r := ws.floats(&ws.iterBuf, k)
	copy(r, r0)
	next := ws.floats(&ws.nextBuf, k)

	iters := 0
	converged := false
	for iters = 1; iters <= opt.MaxIter; iters++ {
		if err := core.CtxErr(ctx); err != nil {
			// Abandoned mid-solve: report the last iterate's rates and
			// the rounds completed; C is not owed for an unaccepted point.
			copy(rdst, r)
			return ClassNashResult{R: rdst, Iters: iters - 1}, err
		}
		maxDelta := 0.0
		switch opt.Scheme {
		case Jacobi:
			copy(next, r)
			for d := 0; d < k; d++ {
				if !free[d] {
					continue
				}
				br, _ := classBestResponseWS(ws, kind, cg.Classes[d].U, r, counts, d, opt.BR)
				next[d] = (1-opt.Damping)*r[d] + opt.Damping*br
			}
			for d := 0; d < k; d++ {
				if delta := math.Abs(next[d] - r[d]); delta > maxDelta {
					maxDelta = delta
				}
			}
			copy(r, next)
		default: // GaussSeidel
			for d := 0; d < k; d++ {
				if !free[d] {
					continue
				}
				br, _ := classBestResponseWS(ws, kind, cg.Classes[d].U, r, counts, d, opt.BR)
				nr := (1-opt.Damping)*r[d] + opt.Damping*br
				if delta := math.Abs(nr - r[d]); delta > maxDelta {
					maxDelta = delta
				}
				r[d] = nr
			}
		}
		if maxDelta <= opt.Tol {
			converged = true
			break
		}
	}

	copy(rdst, r)
	classCongestionInto(ws, kind, cdst, rdst, counts)
	res := ClassNashResult{R: rdst, C: cdst, Converged: converged, Iters: iters}
	for d := 0; d < k; d++ {
		if !free[d] {
			continue
		}
		if err := core.CtxErr(ctx); err != nil {
			// Mid-audit: the solve finished, MaxGain covers only the
			// classes audited so far — a lower bound, as in SolveNashWS.
			return res, err
		}
		_, best := classBestResponseWS(ws, kind, cg.Classes[d].U, rdst, counts, d, opt.BR)
		if g := best - cg.Classes[d].U.Value(rdst[d], cdst[d]); g > res.MaxGain {
			res.MaxGain = g
		}
	}
	return res, nil
}

// solveNashClassMirror is the mirror-expanded solve: the class game is
// expanded into per-user workspace buffers and handed verbatim to
// SolveNashWS, so every round, probe, convergence test, and audit is the
// exact per-user computation — Float64bits-equal to solving the expanded
// profile directly, by construction, for every scheme and discipline.
// The per-class view reports each class's first member: rounding can
// split same-class members by an ulp mid-iteration (Proportional's sums
// are position-dependent), and the first member in canonical order is
// the deterministic representative.  O(N) time and memory — the
// fidelity reference the differential tests compare the fast path to,
// not a fast path itself.
func solveNashClassMirror(ctx context.Context, ws *ClassWorkspace, a core.Allocation, cg ClassGame, r0 []core.Rate, opt ClassNashOptions, rdst, cdst []float64) (ClassNashResult, error) {
	k := cg.K()
	n := cg.N()
	starts := ws.ints(&ws.startsBuf, k)
	xr := ws.floats(&ws.xr, n)
	if cap(ws.xus) < n {
		ws.xus = make(core.Profile, n)
	}
	xus := ws.xus[:n]
	s := 0
	for j, c := range cg.Classes {
		if err := core.CtxErr(ctx); err != nil {
			return ClassNashResult{}, err
		}
		starts[j] = s
		for m := 0; m < c.Count; m++ {
			xr[s] = r0[j]
			xus[s] = c.U
			s++
		}
	}
	xopt := opt.NashOptions
	if opt.Free != nil {
		xfree := ws.bools(n)
		for j, c := range cg.Classes {
			if err := core.CtxErr(ctx); err != nil {
				return ClassNashResult{}, err
			}
			for m := 0; m < c.Count; m++ {
				xfree[starts[j]+m] = opt.Free[j]
			}
		}
		xopt.Free = xfree
	}
	res, err := SolveNashWS(ctx, &ws.g, a, xus, xr, xopt)
	for j := 0; j < k; j++ {
		if starts[j] < len(res.R) {
			rdst[j] = res.R[starts[j]]
		}
	}
	out := ClassNashResult{R: rdst, Converged: res.Converged, Iters: res.Iters, MaxGain: res.MaxGain}
	if res.C != nil {
		for j := 0; j < k; j++ {
			cdst[j] = res.C[starts[j]]
		}
		out.C = cdst
	}
	return out, err
}
