package game

import (
	"context"
	"errors"
	"math"
	"sort"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/mm1"
	"greednet/internal/utility"
)

// Heavy-traffic / fluid-limit mode: solve the N → ∞ equilibrium of a
// class game directly, following the scaling of "Heavy Traffic
// Approximation of Equilibria in Resource Sharing Games" (PAPERS.md,
// arXiv:1109.6166).  As N grows with class fractions α_j = Count_j/N
// fixed, per-user rates shrink as ρ_j = ŷ_j/N and per-user congestions
// as C_j = ĉ_j/N; the scaled pair (ŷ, ĉ) has an N-free fixed point.
//
// Under Fair Share the per-user serial chain collapses onto class
// blocks: with classes sorted by scaled rate ŷ and F_{j−1} the user
// fraction before block j, σ_{j−1} the load volume before it,
//
//	X_j = (1−F_{j−1})·ŷ_j + σ_{j−1}
//	ĉ_j = ĉ_{j−1} + (g(X_j) − g(X_{j−1})) / (1−F_{j−1})
//
// and a zero-mass deviator sending ŷ inserts by the same comparison with
// ĉ(ŷ) = ĉ_pre + (g((1−F_pre)·ŷ + σ_pre) − g_pre)/(1−F_pre).  A deviator
// strictly above every class has F_pre = 1: it carries its g-increment
// alone, whose scaled limit is ĉ = ĉ_last + ŷ·g'(σ) — linear growth in
// ŷ, the finite-N analogue of the top user paying the full marginal
// congestion (the pack below stays insulated from it, as in the paper).
//
// Under the proportional allocation the zero-mass limit is
// ĉ(ŷ) = ŷ/(1−s) with s = Σ α_j·ŷ_j: the deviator's own-rate effect on s
// vanishes, the payoff A·ŷ − γ·ŷ/(1−s) turns linear in ŷ, and
// best-response iteration degenerates to bang-bang.  The equilibrium is
// instead closed-form: classes push load until the best per-unit margin
// hits zero, so s* = 1 − min_j γ_j/A_j (clamped to [0, 1)), carried by
// the critical class(es) attaining the min — matching the finite-N
// FIFO equilibrium x = (1−s_o) − √(γ(1−s_o)) as N → ∞.
//
// Only linear utilities survive the scaling N-free (U = A·ρ − γ·C gives
// N·U = A·ŷ − γ·ĉ), so the fluid solver requires utility.Linear classes
// and the FairShare or Proportional allocation; Square's C = r²
// degenerates at rate N⁻² and has no nontrivial limit.

// ErrFluidUtility is returned when a class's utility is not linear —
// the only family whose payoff is N-free under fluid scaling.
var ErrFluidUtility = errors.New("game: fluid solver requires linear utilities")

// ErrFluidAlloc is returned for allocations without a fluid limit here.
var ErrFluidAlloc = errors.New("game: fluid solver supports FairShare and Proportional")

// FluidResult reports the N → ∞ equilibrium in scaled units: Y[j] is
// class j's scaled per-user rate ŷ_j = lim N·ρ_j and Chat[j] its scaled
// congestion ĉ_j = lim N·C_j, both in canonical class order.  Divide by
// N to compare against a finite-N solve.
type FluidResult struct {
	Y, Chat   []float64
	Converged bool
	Iters     int
	// MaxGain is the largest remaining scaled deviation gain
	// (per-user gain ≈ MaxGain/N).
	MaxGain float64
}

// fluidChain holds the sorted block chain of one Fair Share fluid
// evaluation: prefix fractions, volumes, and the g/ĉ accumulations.
type fluidChain struct {
	ord      []int // canonical class index by ascending ŷ
	alpha, y []float64
	f, sigma []float64 // prefix fraction / volume before sorted block j
	gx, cacc []float64
	flood    int // first flooded sorted block; k when none
}

func buildFluidChain(alpha, y []float64) *fluidChain {
	k := len(y)
	c := &fluidChain{
		ord:   make([]int, k),
		alpha: alpha,
		y:     y,
		f:     make([]float64, k+1),
		sigma: make([]float64, k+1),
		gx:    make([]float64, k),
		cacc:  make([]float64, k),
		flood: k,
	}
	for j := range c.ord {
		c.ord[j] = j
	}
	sort.SliceStable(c.ord, func(a, b int) bool { return y[c.ord[a]] < y[c.ord[b]] })
	prevG, acc := 0.0, 0.0
	for j := 0; j < k; j++ {
		o := c.ord[j]
		c.f[j+1] = c.f[j] + alpha[o]
		c.sigma[j+1] = c.sigma[j] + alpha[o]*y[o]
		rem := 1 - c.f[j]
		x := rem*y[o] + c.sigma[j]
		g := mm1.G(x)
		if math.IsInf(g, 1) {
			c.flood = j
			break
		}
		acc += (g - prevG) / rem
		c.gx[j] = g
		c.cacc[j] = acc
		prevG = g
	}
	return c
}

// deviator returns the scaled congestion of a zero-mass member of class
// d sending ŷ against the chain.
func (c *fluidChain) deviator(d int, yv float64) float64 {
	pos := 0
	for pos < len(c.ord) {
		o := c.ord[pos]
		if c.y[o] < yv || (!(yv < c.y[o]) && o < d) {
			pos++
			continue
		}
		break
	}
	if pos > c.flood {
		return math.Inf(1)
	}
	rem := 1 - c.f[pos]
	if rem <= 0 {
		// Strictly above every class: at finite N the deviator shares every
		// chain increment (prevC) and then carries one solo step above the
		// previous top user — whose own x already includes the deviator
		// clamped to the top rate, so the step is
		// N·(g(σ+ŷ/N) − g(σ+ŷ_top/N)) → (ŷ − ŷ_top)·g'(σ): linear in ŷ and
		// continuous at ŷ = ŷ_top.  (Charging ŷ·g'(σ) instead would stack
		// an artificial congestion cliff on top of the chain, pinning the
		// top class at whatever rate it currently holds.  GPrime saturates
		// to +Inf when the chain already fills capacity.)
		prevC := 0.0
		if pos >= 1 {
			prevC = c.cacc[pos-1]
		}
		top := c.y[c.ord[len(c.ord)-1]]
		return prevC + (yv-top)*mm1.GPrime(c.sigma[pos])
	}
	g := mm1.G(rem*yv + c.sigma[pos])
	if math.IsInf(g, 1) {
		return math.Inf(1)
	}
	prevG, prevC := 0.0, 0.0
	if pos >= 1 {
		prevG, prevC = c.gx[pos-1], c.cacc[pos-1]
	}
	return prevC + (g-prevG)/rem
}

// classChat writes each class's scaled congestion at the chain point.
func (c *fluidChain) classChat(dst []float64) {
	for j := range c.ord {
		if j >= c.flood {
			dst[c.ord[j]] = math.Inf(1)
			continue
		}
		dst[c.ord[j]] = c.cacc[j]
	}
}

// fluidLinear extracts the linear utilities of a class game, or fails.
func fluidLinear(cg ClassGame) ([]utility.Linear, error) {
	out := make([]utility.Linear, cg.K())
	for j, c := range cg.Classes {
		lu, ok := c.U.(utility.Linear)
		if !ok {
			return nil, ErrFluidUtility
		}
		out[j] = lu
	}
	return out, nil
}

// SolveNashFluid solves the heavy-traffic equilibrium of cg's class
// structure: fractions α_j = Count_j/N and scaled starts ŷ_j = N·Rate_j
// are read from the game, and best-response iteration runs entirely in
// scaled units, so the answer is independent of N for fixed fractions
// and volumes.  Options keep their SolveNashClass meanings with Tol and
// BR bounds interpreted in ŷ-space (BR.Hi defaults to twice the current
// top scaled rate rather than the per-user 1−1e-9).
func SolveNashFluid(ctx context.Context, a core.Allocation, cg ClassGame, opt ClassNashOptions) (FluidResult, error) {
	k := cg.K()
	if k == 0 {
		return FluidResult{}, ErrBadClass
	}
	var prop bool
	switch a.(type) {
	case alloc.FairShare:
	case alloc.Proportional:
		prop = true
	default:
		return FluidResult{}, ErrFluidAlloc
	}
	lus, err := fluidLinear(cg)
	if err != nil {
		return FluidResult{}, err
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 500
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-7
	}
	if opt.Damping <= 0 || opt.Damping > 1 {
		opt.Damping = 1
	}
	free := opt.Free
	if free == nil {
		free = make([]bool, k)
		for j := range free {
			free[j] = true
		}
	}
	n := float64(cg.N())
	alpha := make([]float64, k)
	y := make([]float64, k)
	for j, c := range cg.Classes {
		alpha[j] = float64(c.Count) / n
		y[j] = n * c.Rate
	}
	if prop {
		return solveFluidProportional(lus, alpha, y, free), nil
	}

	payoff := func(d int, yv, chat float64) float64 {
		return lus[d].A*yv - lus[d].Gamma*chat
	}
	devCongestion := func(d int, yv float64) float64 {
		return buildFluidChain(alpha, y).deviator(d, yv)
	}
	bestResponse := func(d int) float64 {
		br := opt.BR
		if br.Lo <= 0 {
			br.Lo = 1e-9
		}
		if br.Hi <= 0 {
			top := 1.0
			for _, v := range y {
				if v > top {
					top = v
				}
			}
			br.Hi = 2 * top
		}
		if br.GridPoints <= 0 {
			br.GridPoints = 64
		}
		if br.Tol <= 0 {
			br.Tol = 1e-10
		}
		chain := buildFluidChain(alpha, y)
		h := func(x float64) float64 {
			return payoff(d, x, chain.deviator(d, x))
		}
		x, _ := maximizeGrid(h, br.Lo, br.Hi, br.GridPoints, br.Tol)
		return x
	}

	next := make([]float64, k)
	iters := 0
	converged := false
	for iters = 1; iters <= opt.MaxIter; iters++ {
		if err := core.CtxErr(ctx); err != nil {
			return FluidResult{Y: y, Iters: iters - 1}, err
		}
		maxDelta := 0.0
		switch opt.Scheme {
		case Jacobi:
			copy(next, y)
			for d := 0; d < k; d++ {
				if !free[d] {
					continue
				}
				br := bestResponse(d)
				next[d] = (1-opt.Damping)*y[d] + opt.Damping*br
			}
			for d := 0; d < k; d++ {
				if delta := math.Abs(next[d] - y[d]); delta > maxDelta {
					maxDelta = delta
				}
			}
			copy(y, next)
		default: // GaussSeidel
			for d := 0; d < k; d++ {
				if !free[d] {
					continue
				}
				br := bestResponse(d)
				ny := (1-opt.Damping)*y[d] + opt.Damping*br
				if delta := math.Abs(ny - y[d]); delta > maxDelta {
					maxDelta = delta
				}
				y[d] = ny
			}
		}
		if maxDelta <= opt.Tol {
			converged = true
			break
		}
	}

	chat := make([]float64, k)
	buildFluidChain(alpha, y).classChat(chat)
	res := FluidResult{Y: y, Chat: chat, Converged: converged, Iters: iters}
	for d := 0; d < k; d++ {
		if !free[d] {
			continue
		}
		if err := core.CtxErr(ctx); err != nil {
			return res, err
		}
		br := bestResponse(d)
		if g := payoff(d, br, devCongestion(d, br)) - payoff(d, y[d], chat[d]); g > res.MaxGain {
			res.MaxGain = g
		}
	}
	return res, nil
}

// solveFluidProportional computes the closed-form proportional fluid
// equilibrium.  Held (non-free) classes contribute fixed load; free
// classes push until the best remaining per-unit margin A_j − γ_j/(1−s)
// reaches zero, so total load is s* = max(s_held, 1 − min_j γ_j/A_j)
// with the fill carried by the critical free class(es) attaining the
// min, split by mass when tied.  A free class with γ_j ≤ 0 (and A_j > 0)
// gains without bound — no finite equilibrium exists and the result is
// marked unconverged.
func solveFluidProportional(lus []utility.Linear, alpha, y []float64, free []bool) FluidResult {
	k := len(y)
	held := 0.0
	rmin := math.Inf(1)
	for j := 0; j < k; j++ {
		if !free[j] {
			held += alpha[j] * y[j]
			continue
		}
		y[j] = 0
		if lus[j].A > 0 {
			if r := lus[j].Gamma / lus[j].A; r < rmin {
				rmin = r
			}
		}
	}
	res := FluidResult{Y: y, Converged: true, Iters: 1}
	if rmin <= 0 {
		res.Converged = false
		res.MaxGain = math.Inf(1)
	}
	target := 1 - rmin
	s := held
	if res.Converged && target > held {
		// Critical = attains rmin exactly; the ratio is recomputed by the
		// same expression, so a bit-level match is the right tie test.
		crit := 0.0
		for j := 0; j < k; j++ {
			if free[j] && lus[j].A > 0 &&
				math.Float64bits(lus[j].Gamma/lus[j].A) == math.Float64bits(rmin) {
				crit += alpha[j]
			}
		}
		if crit > 0 {
			// Tied critical classes share the fill symmetrically per unit
			// of mass: ŷ_j = (s* − s_held)/Σ α_tied for each.
			fill := (target - held) / crit
			for j := 0; j < k; j++ {
				if free[j] && lus[j].A > 0 &&
					math.Float64bits(lus[j].Gamma/lus[j].A) == math.Float64bits(rmin) {
					y[j] = fill
					s += alpha[j] * fill
				}
			}
		}
	}
	chat := make([]float64, k)
	if s >= 1 {
		for j := range chat {
			chat[j] = math.Inf(1)
		}
	} else {
		for j := range chat {
			chat[j] = y[j] / (1 - s)
		}
	}
	res.Chat = chat
	if res.Converged {
		// Remaining gain: payoff is linear in ŷ with slope
		// m_j = A_j − γ_j/(1−s); at the closed form every free class has
		// m_j ≤ 0 and only critical classes (m_j = 0) hold load, so the
		// best deviation is dropping to zero, worth −m_j·ŷ_j.
		for j := 0; j < k; j++ {
			if !free[j] || y[j] <= 0 {
				continue
			}
			m := lus[j].A
			if s >= 1 {
				m = math.Inf(-1)
			} else {
				m -= lus[j].Gamma / (1 - s)
			}
			if g := -m * y[j]; g > res.MaxGain {
				res.MaxGain = g
			}
		}
	}
	return res
}
