package game

import (
	"context"
	"math"

	"greednet/internal/alloc"
	"greednet/internal/core"
)

// StackelbergResult reports a leader/follower equilibrium (Definition 5).
type StackelbergResult struct {
	// Leader is the index of the leading user.
	Leader int
	// R and C are the equilibrium rates and congestions: the leader's rate
	// maximizes her utility given that the followers settle into the Nash
	// equilibrium of their subsystem.
	R, C []float64
	// LeaderUtility is the leader's achieved utility.
	LeaderUtility float64
	// FollowersConverged is false when some inner follower solve failed to
	// converge at the chosen leader rate.
	FollowersConverged bool
}

// StackOptions configures SolveStackelberg.
type StackOptions struct {
	// Grid is the number of leader-rate grid cells scanned before local
	// refinement; default 40.
	Grid int
	// Tol is the leader-rate refinement tolerance; default 1e-6.
	Tol float64
	// Nash configures the inner follower equilibration.
	Nash NashOptions
}

func (o StackOptions) withDefaults() StackOptions {
	if o.Grid <= 0 {
		o.Grid = 40
	}
	if o.Tol <= 0 {
		o.Tol = 1e-6
	}
	return o
}

// SolveStackelberg computes the Stackelberg equilibrium with the given
// leader: the leader commits to a rate, the remaining users reach the Nash
// equilibrium of the induced subsystem, and the leader picks the rate whose
// induced outcome she likes best.  Under Fair Share the result coincides
// with the Nash equilibrium (Theorem 5); under proportional allocations the
// leader generally gains.
func SolveStackelberg(a core.Allocation, us core.Profile, leader int, r0 []core.Rate, opt StackOptions) (StackelbergResult, error) {
	opt = opt.withDefaults()
	n := len(r0)
	free := make([]bool, n)
	for i := range free {
		free[i] = i != leader
	}
	inner := opt.Nash
	inner.Free = free

	followersOK := true
	// value evaluates the leader's utility when committing to rate x,
	// equilibrating the followers from the warm start.  One workspace and
	// one start buffer serve every leader-rate probe: the inner solver
	// copies the start vector before iterating, so the buffer is free for
	// reuse as soon as SolveNashWS is entered.
	ws := NewWorkspace()
	warm := append([]float64(nil), r0...)
	start := make([]float64, n)
	value := func(x float64) float64 {
		copy(start, warm)
		start[leader] = x
		res, err := SolveNashWS(context.Background(), ws, a, us, start, inner)
		if err != nil {
			return math.Inf(-1)
		}
		if !res.Converged {
			followersOK = false
		}
		copy(warm, res.R)
		return us[leader].Value(x, alloc.CongestionOfInto(a, &ws.aws, ws.congestion(n), res.R, leader))
	}
	x, _ := maximizeGrid(value, 1e-6, 1-1e-6, opt.Grid, opt.Tol)

	copy(start, warm)
	start[leader] = x
	res, err := SolveNashWS(context.Background(), ws, a, us, start, inner)
	if err != nil {
		return StackelbergResult{}, err
	}
	out := StackelbergResult{
		Leader:             leader,
		R:                  res.R,
		C:                  a.Congestion(res.R), //lint:allow feasguard reports C(r) at the solved point; the Allocation contract defines it on all of R+^n
		FollowersConverged: followersOK && res.Converged,
	}
	out.LeaderUtility = us[leader].Value(out.R[leader], out.C[leader])
	return out, nil
}

// LeaderAdvantage compares the leader's Stackelberg utility to her Nash
// utility and returns the difference (≥ 0 by definition up to solver
// noise).  Theorem 5 says Fair Share makes the advantage exactly zero.
func LeaderAdvantage(a core.Allocation, us core.Profile, leader int, r0 []core.Rate, opt StackOptions) (float64, StackelbergResult, NashResult, error) {
	st, err := SolveStackelberg(a, us, leader, r0, opt)
	if err != nil {
		return 0, StackelbergResult{}, NashResult{}, err
	}
	nash, err := SolveNash(a, us, r0, opt.Nash)
	if err != nil {
		return 0, StackelbergResult{}, NashResult{}, err
	}
	nu := us[leader].Value(nash.R[leader], nash.C[leader])
	return st.LeaderUtility - nu, st, nash, nil
}
