package game

import (
	"math"
	"testing"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/numeric"
	"greednet/internal/utility"
)

func TestNewtonMatchesBestResponseFairShare(t *testing.T) {
	us := core.Profile{
		utility.NewLinear(1, 0.2),
		utility.NewLinear(1, 0.35),
		utility.Log{W: 0.3, Gamma: 1},
	}
	br, err := SolveNash(alloc.FairShare{}, us, []float64{0.1, 0.1, 0.1}, NashOptions{})
	if err != nil || !br.Converged {
		t.Fatal("best-response solve failed")
	}
	nw, err := SolveNashNewton(alloc.FairShare{}, us, []float64{0.1, 0.1, 0.1}, 0, 0)
	if err != nil || !nw.Converged {
		t.Fatalf("Newton solve failed: %v", err)
	}
	if d := numeric.VecDist(br.R, nw.R); d > 1e-5 {
		t.Errorf("solvers disagree by %v: %v vs %v", d, br.R, nw.R)
	}
	if nw.MaxGain > 1e-6 {
		t.Errorf("Newton point is not Nash: gain %v", nw.MaxGain)
	}
}

func TestNewtonMatchesClosedFormSymmetric(t *testing.T) {
	n := 4
	gamma := 0.25
	us := utility.Identical(utility.NewLinear(1, gamma), n)
	want := (1 - math.Sqrt(gamma)) / float64(n)
	// Start slightly off-symmetric so the FS Jacobian is well behaved.
	start := []float64{0.12, 0.13, 0.14, 0.15}
	res, err := SolveNashNewton(alloc.FairShare{}, us, start, 0, 0)
	if err != nil || !res.Converged {
		t.Fatalf("Newton failed: %v", err)
	}
	for i, v := range res.R {
		if math.Abs(v-want) > 1e-6 {
			t.Errorf("r[%d] = %v, want %v", i, v, want)
		}
	}
}

func TestNewtonProportional(t *testing.T) {
	us := utility.Identical(utility.NewLinear(1, 0.2), 3)
	br, err := SolveNash(alloc.Proportional{}, us, []float64{0.1, 0.1, 0.1}, NashOptions{})
	if err != nil || !br.Converged {
		t.Fatal("BR failed")
	}
	start := append([]float64(nil), br.R...)
	for i := range start {
		start[i] *= 1.05
	}
	res, err := SolveNashNewton(alloc.Proportional{}, us, start, 0, 0)
	if err != nil || !res.Converged {
		t.Fatalf("Newton failed: %v", err)
	}
	if d := numeric.VecDist(br.R, res.R); d > 1e-5 {
		t.Errorf("Newton point %v differs from BR point %v", res.R, br.R)
	}
}

func TestNewtonProfileMismatch(t *testing.T) {
	us := utility.Identical(utility.NewLinear(1, 0.2), 2)
	if _, err := SolveNashNewton(alloc.FairShare{}, us, []float64{0.1, 0.1, 0.1}, 0, 0); err == nil {
		t.Error("length mismatch should error")
	}
}

// TestNewtonNonConvergence pins the ran-out-of-iterations contract: with
// maxIter far too small the solver must return the LAST ITERATE with
// Converged == false and a domain error — not a zero NashResult, and not
// a context-typed error (nothing canceled it).
func TestNewtonNonConvergence(t *testing.T) {
	us := core.Profile{
		utility.NewLinear(1, 0.2),
		utility.NewLinear(1, 0.35),
		utility.Log{W: 0.3, Gamma: 1},
	}
	start := []float64{0.4, 0.4, 0.1}
	res, err := SolveNashNewton(alloc.FairShare{}, us, start, 1, 1e-14)
	if err == nil {
		t.Fatal("1 iteration at ftol 1e-14 should not converge")
	}
	if res.Converged {
		t.Error("Converged must be false on the maxIter path")
	}
	if res.Iters != 1 {
		t.Errorf("Iters = %d, want 1 (the budget it spent)", res.Iters)
	}
	if len(res.R) != len(start) {
		t.Fatalf("last iterate missing: R has %d entries, want %d", len(res.R), len(start))
	}
	for i, v := range res.R {
		if v <= 0 || math.IsNaN(v) {
			t.Errorf("r[%d] = %v: the last iterate must be a real point, not a zero value", i, v)
		}
	}
	if len(res.C) != len(start) {
		t.Errorf("failure-path result should still report C at the last iterate, got %d entries", len(res.C))
	}
}
