package game

import (
	"context"
	"math"
	"testing"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/utility"
)

func fluidFixture(t *testing.T, n int) ClassGame {
	t.Helper()
	if n%2 != 0 {
		t.Fatalf("fixture wants even n, got %d", n)
	}
	// Dyadic rates: 0.5/n is exact for power-of-two n, so ŷ = n·rate
	// reproduces 0.5 bit for bit at every n — the N-invariance lever.
	cg, err := NewClassGame([]Class{
		{U: utility.NewLinear(1, 0.5), Rate: 0.5 / float64(n), Count: n / 2},
		{U: utility.NewLinear(1, 1.5), Rate: 0.5 / float64(n), Count: n / 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return cg
}

// TestFluidMatchesClassLargeN pins the heavy-traffic claim: the scaled
// finite-N equilibrium N·r_j approaches the fluid ŷ_j as N grows, for
// both supported disciplines.
func TestFluidMatchesClassLargeN(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		a    core.Allocation
	}{
		{"fair-share", alloc.FairShare{}},
		{"proportional", alloc.Proportional{}},
	} {
		n := 1 << 14
		cg := fluidFixture(t, n)
		fres, err := SolveNashFluid(ctx, tc.a, cg, ClassNashOptions{})
		if err != nil {
			t.Fatalf("%s: fluid: %v", tc.name, err)
		}
		if !fres.Converged {
			t.Fatalf("%s: fluid did not converge", tc.name)
		}
		// Tol must clear the per-user rate scale (~1e-5 at this N) but
		// stay above the golden-section BR jitter (BR.Tol = 1e-10).
		// Damping tempers the proportional whole-class overshoot cycle
		// (see the ClassNashOptions docs); it is harmless for fair share.
		copt := ClassNashOptions{NashOptions: NashOptions{Tol: 1e-9, Damping: 0.5, MaxIter: 2000}}
		cres, err := SolveNashClassWS(ctx, nil, tc.a, cg, nil, copt)
		if err != nil {
			t.Fatalf("%s: class: %v", tc.name, err)
		}
		if !cres.Converged {
			t.Fatalf("%s: class solve did not converge", tc.name)
		}
		for j := range cg.Classes {
			scaled := float64(n) * cres.R[j]
			if fres.Y[j] < 1e-3 {
				// A class at its zero corner: both solvers bottom out at
				// their Lo bounds, which differ in scale (per-user vs ŷ).
				if scaled > 1e-3 {
					t.Errorf("%s: class %d scaled rate %.6f but fluid is at its zero corner", tc.name, j, scaled)
				}
				continue
			}
			if rel := math.Abs(scaled-fres.Y[j]) / fres.Y[j]; rel > 0.02 {
				t.Errorf("%s: class %d scaled rate %.6f vs fluid %.6f (rel %.3g)",
					tc.name, j, scaled, fres.Y[j], rel)
			}
		}
	}
}

// TestFluidNInvariance pins the defining property of the fluid solve:
// with fractions and scaled volumes fixed, the answer is bit-identical
// at every N.
func TestFluidNInvariance(t *testing.T) {
	ctx := context.Background()
	a, err := SolveNashFluid(ctx, alloc.FairShare{}, fluidFixture(t, 1024), ClassNashOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveNashFluid(ctx, alloc.FairShare{}, fluidFixture(t, 1<<20), ClassNashOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.Y {
		if math.Float64bits(a.Y[j]) != math.Float64bits(b.Y[j]) {
			t.Errorf("Y[%d] differs across N: %x vs %x", j, a.Y[j], b.Y[j])
		}
		if math.Float64bits(a.Chat[j]) != math.Float64bits(b.Chat[j]) {
			t.Errorf("Chat[%d] differs across N: %x vs %x", j, a.Chat[j], b.Chat[j])
		}
	}
	if a.Iters != b.Iters || a.Converged != b.Converged {
		t.Errorf("trajectory differs across N: (%d, %v) vs (%d, %v)", a.Iters, a.Converged, b.Iters, b.Converged)
	}
}

// TestFluidRejectsUnsupported pins the guardrails: non-linear utilities
// and disciplines without a fluid limit fail typed.
func TestFluidRejectsUnsupported(t *testing.T) {
	ctx := context.Background()
	logGame, err := NewClassGame([]Class{
		{U: utility.Log{W: 0.3, Gamma: 1}, Rate: 0.001, Count: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SolveNashFluid(ctx, alloc.FairShare{}, logGame, ClassNashOptions{}); err != ErrFluidUtility {
		t.Fatalf("log utility: got %v, want ErrFluidUtility", err)
	}
	cg := fluidFixture(t, 8)
	if _, err := SolveNashFluid(ctx, alloc.Square{}, cg, ClassNashOptions{}); err != ErrFluidAlloc {
		t.Fatalf("square: got %v, want ErrFluidAlloc", err)
	}
}
