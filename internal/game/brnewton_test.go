package game

import (
	"math"
	"math/rand"
	"testing"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/utility"
)

func TestBestResponseNewtonMatchesGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(3)
		us := utility.RandomProfile(rng, n)
		r := make([]float64, n)
		for i := range r {
			r[i] = 0.02 + 0.5*rng.Float64()/float64(n)
		}
		i := rng.Intn(n)
		for _, a := range []core.Allocation{alloc.FairShare{}, alloc.Proportional{}} {
			gx, gval := BestResponse(a, us[i], r, i, BROptions{})
			nx, nval := BestResponseNewton(a, us, r, i, BROptions{})
			// Values must agree (arguments may differ at flat optima).
			if nval < gval-1e-6 {
				t.Fatalf("trial %d %s: Newton value %v < grid value %v (x %v vs %v)",
					trial, a.Name(), nval, gval, nx, gx)
			}
		}
	}
}

func TestBestResponseNewtonCornerFallback(t *testing.T) {
	// γ ≥ 1 drives the optimum to the lower corner; Newton cannot find an
	// interior FDC zero and must fall back gracefully.
	us := core.Profile{utility.NewLinear(1, 2), utility.NewLinear(1, 2)}
	x, _ := BestResponseNewton(alloc.Proportional{}, us, []float64{0.1, 0.2}, 0, BROptions{})
	if x > 1e-5 {
		t.Errorf("corner case: got %v, want ≈0", x)
	}
}

func TestBestResponseNewtonClosedForm(t *testing.T) {
	gamma := 0.25
	us := utility.Identical(utility.NewLinear(1, gamma), 3)
	r := []float64{0.1, 0.2, 0.15}
	tt := 1 - r[1] - r[2]
	want := tt - math.Sqrt(gamma*tt)
	x, _ := BestResponseNewton(alloc.Proportional{}, us, r, 0, BROptions{})
	if math.Abs(x-want) > 1e-7 {
		t.Errorf("Newton BR %v, want %v", x, want)
	}
}
