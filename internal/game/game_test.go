package game

import (
	"math"
	"math/rand"
	"testing"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/mm1"
	"greednet/internal/numeric"
	"greednet/internal/utility"
)

// Linear utilities U = r − γc admit interior equilibria only for γ < 1
// (near zero load congestion costs ≈ r, so γ ≥ 1 drives rates to zero).
// Closed forms used as anchors below:
//
//   Fair Share, N identical users:  Nash rate r* = (1 − √γ)/N.
//   Proportional (FIFO), one user vs fixed others with slack t = 1 − Σ_{j≠i} r_j:
//   best response x = t − √(γ t) when t > γ.

func TestBestResponseProportionalClosedForm(t *testing.T) {
	gamma := 0.25
	u := utility.NewLinear(1, gamma)
	r := []float64{0.1, 0.2, 0.15}
	i := 0
	tt := 1 - r[1] - r[2]
	want := tt - math.Sqrt(gamma*tt)
	x, _ := BestResponse(alloc.Proportional{}, u, r, i, BROptions{})
	if math.Abs(x-want) > 1e-6 {
		t.Errorf("best response %v, want %v", x, want)
	}
}

func TestBestResponseCornerAtHighGamma(t *testing.T) {
	// γ ≥ 1 makes sending pointless; best response collapses to the floor.
	u := utility.NewLinear(1, 2)
	x, _ := BestResponse(alloc.Proportional{}, u, []float64{0.1, 0.2}, 0, BROptions{})
	if x > 1e-6 {
		t.Errorf("best response %v, want ≈0", x)
	}
}

func TestFairShareSymmetricNashClosedForm(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		gamma := 0.25
		want := (1 - math.Sqrt(gamma)) / float64(n)
		us := utility.Identical(utility.NewLinear(1, gamma), n)
		r0 := make([]float64, n)
		for i := range r0 {
			r0[i] = 0.8 / float64(n) * (0.3 + 0.1*float64(i))
		}
		res, err := SolveNash(alloc.FairShare{}, us, r0, NashOptions{})
		if err != nil || !res.Converged {
			t.Fatalf("n=%d: solve failed: %v conv=%v", n, err, res.Converged)
		}
		for i, ri := range res.R {
			if math.Abs(ri-want) > 1e-6 {
				t.Errorf("n=%d: r[%d]=%v, want %v", n, i, ri, want)
			}
		}
		if res.MaxGain > 1e-7 {
			t.Errorf("n=%d: max deviation gain %v", n, res.MaxGain)
		}
	}
}

func TestProportionalSymmetricNashMatchesScalarEquation(t *testing.T) {
	// Symmetric FIFO Nash solves (1−s)² = γ(1−s+r) with s = N r.
	n := 4
	gamma := 0.2
	us := utility.Identical(utility.NewLinear(1, gamma), n)
	r0 := []float64{0.1, 0.1, 0.1, 0.1}
	res, err := SolveNash(alloc.Proportional{}, us, r0, NashOptions{})
	if err != nil || !res.Converged {
		t.Fatalf("solve failed: %v conv=%v", err, res.Converged)
	}
	fn := func(r float64) float64 {
		s := float64(n) * r
		return (1-s)*(1-s) - gamma*(1-s+r)
	}
	rstar, err := numeric.Brent(fn, 1e-6, 1/float64(n)-1e-6, 1e-13)
	if err != nil {
		t.Fatalf("scalar solve: %v", err)
	}
	for i, ri := range res.R {
		if math.Abs(ri-rstar) > 1e-6 {
			t.Errorf("r[%d]=%v, want %v", i, ri, rstar)
		}
	}
}

func TestNashResidualVanishesAtEquilibrium(t *testing.T) {
	n := 3
	gamma := 0.3
	us := utility.Identical(utility.NewLinear(1, gamma), n)
	res, err := SolveNash(alloc.FairShare{}, us, []float64{0.1, 0.15, 0.2}, NashOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e := NashResidual(alloc.FairShare{}, us, res.R)
	if numeric.VecNormInf(e) > 1e-4 {
		t.Errorf("Nash residual %v should vanish at equilibrium", e)
	}
}

func TestFairShareUniqueness(t *testing.T) {
	// Theorem 4: one Nash equilibrium regardless of start.
	rng := rand.New(rand.NewSource(5))
	us := core.Profile{
		utility.NewLinear(1, 0.3),
		utility.Log{W: 0.3, Gamma: 1},
		utility.Sqrt{W: 1, Gamma: 2},
		utility.Power{A: 1, Gamma: 0.8, P: 1.4},
	}
	starts := make([][]float64, 12)
	for k := range starts {
		s := make([]float64, len(us))
		for i := range s {
			s[i] = 0.02 + 0.2*rng.Float64()
		}
		starts[k] = s
	}
	ms := MultiStartNash(alloc.FairShare{}, us, starts, NashOptions{}, 1e-5)
	if len(ms.All) != len(starts) {
		t.Fatalf("only %d/%d starts converged", len(ms.All), len(starts))
	}
	if len(ms.Distinct) != 1 {
		t.Fatalf("found %d distinct FS equilibria, want 1", len(ms.Distinct))
	}
}

func TestProportionalNashNotPareto(t *testing.T) {
	// Theorem 1 / §4.1.1: proportional Nash equilibria are never Pareto.
	n := 3
	gamma := 0.2
	us := utility.Identical(utility.NewLinear(1, gamma), n)
	res, err := SolveNash(alloc.Proportional{}, us, []float64{0.1, 0.1, 0.1}, NashOptions{})
	if err != nil || !res.Converged {
		t.Fatal("solve failed")
	}
	p := core.Point{R: res.R, C: res.C}
	if IsParetoFDC(us, p, 1e-6) {
		t.Error("proportional Nash should violate the Pareto FDC")
	}
	// Constructive: a dominating feasible point exists.
	w := FindDominating(us, p, rand.New(rand.NewSource(6)), 4000)
	if w == nil {
		t.Error("expected a Pareto-dominating witness for the FIFO Nash")
	}
}

func TestFairShareSymmetricNashIsPareto(t *testing.T) {
	// Theorem 2(2): with identical users the FS Nash is the symmetric
	// Pareto point.
	n := 4
	gamma := 0.25
	u := utility.NewLinear(1, gamma)
	us := utility.Identical(u, n)
	res, err := SolveNash(alloc.FairShare{}, us, []float64{0.05, 0.1, 0.15, 0.2}, NashOptions{})
	if err != nil || !res.Converged {
		t.Fatal("solve failed")
	}
	p := core.Point{R: res.R, C: res.C}
	if !IsParetoFDC(us, p, 1e-4) {
		t.Errorf("FS symmetric Nash should satisfy the Pareto FDC; residual %v",
			ParetoResidual(us, p))
	}
	rp, cp, ok := SymmetricParetoRate(u, n)
	if !ok {
		t.Fatal("no symmetric Pareto rate found")
	}
	for i := range p.R {
		if math.Abs(p.R[i]-rp) > 1e-6 || math.Abs(p.C[i]-cp) > 1e-5 {
			t.Errorf("FS Nash (%v, %v) differs from symmetric Pareto (%v, %v)",
				p.R[i], p.C[i], rp, cp)
		}
	}
}

func TestHeterogeneousFairShareNashNotPareto(t *testing.T) {
	// Theorem 1 applies to Fair Share too: with heterogeneous users its
	// Nash equilibrium is generally not Pareto optimal.
	us := core.Profile{utility.NewLinear(1, 0.1), utility.NewLinear(1, 0.6)}
	res, err := SolveNash(alloc.FairShare{}, us, []float64{0.2, 0.2}, NashOptions{})
	if err != nil || !res.Converged {
		t.Fatal("solve failed")
	}
	if math.Abs(res.R[0]-res.R[1]) < 1e-6 {
		t.Fatal("expected asymmetric equilibrium")
	}
	if IsParetoFDC(us, core.Point{R: res.R, C: res.C}, 1e-6) {
		t.Error("asymmetric FS Nash should not satisfy the Pareto FDC (Theorem 2)")
	}
}

func TestEnvyAtProportionalNash(t *testing.T) {
	// With linear utilities, at any interior proportional Nash every user
	// envies every larger sender (allocations lie on a ray c = r/(1−s) and
	// the optimizing user's FDC forces a positive slope preference).
	us := core.Profile{utility.NewLinear(1, 0.25), utility.NewLinear(1, 0.3)}
	res, err := SolveNash(alloc.Proportional{}, us, []float64{0.1, 0.1}, NashOptions{})
	if err != nil || !res.Converged {
		t.Fatal("solve failed")
	}
	amount, envier, envied := MaxEnvy(us, core.Point{R: res.R, C: res.C})
	if amount <= 1e-9 {
		t.Fatalf("expected envy at proportional Nash, got %v", amount)
	}
	if res.R[envier] >= res.R[envied] {
		t.Errorf("envier %d should be the smaller sender (r=%v)", envier, res.R)
	}
}

func TestFairShareNashEnvyFree(t *testing.T) {
	// Theorem 3: FS equilibria are envy-free, any profile.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(3)
		us := utility.RandomProfile(rng, n)
		r0 := make([]float64, n)
		for i := range r0 {
			r0[i] = 0.05 + 0.2*rng.Float64()
		}
		res, err := SolveNash(alloc.FairShare{}, us, r0, NashOptions{})
		if err != nil || !res.Converged {
			t.Fatalf("trial %d: solve failed", trial)
		}
		if !IsEnvyFree(us, core.Point{R: res.R, C: res.C}, 1e-7) {
			amount, i, j := MaxEnvy(us, core.Point{R: res.R, C: res.C})
			t.Fatalf("trial %d: FS Nash envious: user %d envies %d by %v", trial, i, j, amount)
		}
	}
}

func TestFairShareUnilaterallyEnvyFree(t *testing.T) {
	// Theorem 3(1): after best-responding, a user envies no one — whatever
	// the others do, including overload.
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(3)
		us := utility.RandomProfile(rng, n)
		r := make([]float64, n)
		for i := range r {
			r[i] = 0.02 + 0.5*rng.Float64()
		}
		i := rng.Intn(n)
		if v := UnilateralEnvy(alloc.FairShare{}, us, r, i, BROptions{}); v > 1e-6 {
			t.Fatalf("trial %d: FS unilateral envy %v > 0 at r=%v user %d", trial, v, r, i)
		}
	}
}

func TestProportionalNotUnilaterallyEnvyFree(t *testing.T) {
	// A congestion-averse optimizer facing a blaster envies the blaster's
	// allocation under FIFO.
	us := core.Profile{utility.NewLinear(1, 0.15), utility.NewLinear(1, 0.15)}
	r := []float64{0.1, 0.55}
	if v := UnilateralEnvy(alloc.Proportional{}, us, r, 0, BROptions{}); v <= 0 {
		t.Errorf("expected positive unilateral envy under FIFO, got %v", v)
	}
}

func TestProtectionFSvsProportional(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	fs := AttackProtection(alloc.FairShare{}, 0.1, 3, 1.5, rng, 400)
	if fs.Violated {
		t.Errorf("Fair Share protection violated: worst %v > bound %v at %v",
			fs.WorstCongestion, fs.Bound, fs.WorstAttack)
	}
	pr := AttackProtection(alloc.Proportional{}, 0.1, 3, 0.98, rng, 400)
	if !pr.Violated {
		t.Errorf("proportional should violate protection: worst %v, bound %v",
			pr.WorstCongestion, pr.Bound)
	}
}

func TestStackelbergFairShareEqualsNash(t *testing.T) {
	// Theorem 5(2): under FS the leader gains nothing.
	us := core.Profile{utility.NewLinear(1, 0.2), utility.NewLinear(1, 0.4)}
	adv, st, nash, err := LeaderAdvantage(alloc.FairShare{}, us, 0, []float64{0.1, 0.1}, StackOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !st.FollowersConverged || !nash.Converged {
		t.Fatal("inner solves failed")
	}
	if math.Abs(adv) > 1e-5 {
		t.Errorf("FS leader advantage %v, want ≈0 (st=%v nash=%v)", adv, st.R, nash.R)
	}
	if numeric.VecDist(st.R, nash.R) > 1e-3 {
		t.Errorf("FS Stackelberg point %v differs from Nash %v", st.R, nash.R)
	}
}

func TestStackelbergProportionalLeaderGains(t *testing.T) {
	us := core.Profile{utility.NewLinear(1, 0.2), utility.NewLinear(1, 0.2)}
	adv, st, nash, err := LeaderAdvantage(alloc.Proportional{}, us, 0, []float64{0.1, 0.1}, StackOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if adv <= 1e-6 {
		t.Errorf("FIFO leader advantage %v, want > 0 (st=%v nash=%v)", adv, st.R, nash.R)
	}
	if st.R[0] <= nash.R[0] {
		t.Errorf("FIFO leader should send more than at Nash: %v vs %v", st.R[0], nash.R[0])
	}
}

func TestRelaxationMatrixFairShareNilpotent(t *testing.T) {
	// Theorem 7(1): with distinct rates the FS relaxation matrix is
	// strictly lower triangular in the rate order, hence nilpotent.
	us := core.Profile{
		utility.NewLinear(1, 0.2),
		utility.NewLinear(1, 0.35),
		utility.NewLinear(1, 0.5),
	}
	res, err := SolveNash(alloc.FairShare{}, us, []float64{0.1, 0.1, 0.1}, NashOptions{})
	if err != nil || !res.Converged {
		t.Fatal("solve failed")
	}
	A := RelaxationMatrix(alloc.FairShare{}, us, res.R, 1e-6)
	// Entries A[i][j] with r_j > r_i must vanish.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if res.R[j] > res.R[i] && math.Abs(A.At(i, j)) > 1e-3 {
				t.Errorf("A[%d][%d] = %v should be 0 (r=%v)", i, j, A.At(i, j), res.R)
			}
		}
	}
	if !numeric.IsNilpotent(A, 1e-3) {
		t.Errorf("FS relaxation matrix not nilpotent:\n%v", A)
	}
}

func TestRelaxationProportionalLeadingEigenvalue(t *testing.T) {
	// §4.2.3: for identical linear utilities the proportional relaxation
	// matrix has leading eigenvalue −(N−1)·(t+2r)/(2t+2r), which tends to
	// 1−N in the congestion-insensitive (γ→0) limit, and exceeds 1 in
	// magnitude for all N ≥ 3.
	for _, n := range []int{3, 5} {
		gamma := 0.02
		us := utility.Identical(utility.NewLinear(1, gamma), n)
		r0 := make([]float64, n)
		for i := range r0 {
			r0[i] = 0.5 / float64(n)
		}
		res, err := SolveNash(alloc.Proportional{}, us, r0, NashOptions{})
		if err != nil || !res.Converged {
			t.Fatalf("n=%d: solve failed", n)
		}
		A := RelaxationMatrix(alloc.Proportional{}, us, res.R, 1e-6)
		rho, err := numeric.SpectralRadius(A)
		if err != nil {
			t.Fatal(err)
		}
		if rho <= 1 {
			t.Errorf("n=%d: spectral radius %v, want > 1 (unstable)", n, rho)
		}
		// Analytic prediction at the symmetric point.
		s := mm1.Sum(res.R)
		r := res.R[0]
		tt := 1 - s
		want := float64(n-1) * (tt + 2*r) / (2 * (tt + r))
		if math.Abs(rho-want) > 0.02*want {
			t.Errorf("n=%d: ρ = %v, analytic %v", n, rho, want)
		}
		if want < float64(n-1)*0.8 {
			t.Logf("n=%d note: γ=%v not deep enough in the 1−N limit (ρ→%v)", n, gamma, want)
		}
	}
}

func TestNewtonConvergenceFairShare(t *testing.T) {
	// Theorem 7: nilpotency makes synchronous Newton converge in ≤ N steps
	// in the linear regime.  Start near the equilibrium.
	us := core.Profile{
		utility.NewLinear(1, 0.2),
		utility.NewLinear(1, 0.35),
		utility.NewLinear(1, 0.5),
	}
	res, err := SolveNash(alloc.FairShare{}, us, []float64{0.1, 0.1, 0.1}, NashOptions{})
	if err != nil || !res.Converged {
		t.Fatal("solve failed")
	}
	r0 := append([]float64(nil), res.R...)
	for i := range r0 {
		r0[i] *= 1.02 // small displacement, stays in linear regime
	}
	hist := NewtonConvergence(alloc.FairShare{}, us, r0, 5)
	if hist[len(hist)-1] > 1e-5*hist[0] {
		t.Errorf("FS Newton residuals %v did not collapse", hist)
	}
}

func TestNewtonDivergesProportional(t *testing.T) {
	// For N ≥ 3 identical linear users the synchronous Newton dynamics are
	// linearly unstable under the proportional allocation.
	n := 4
	gamma := 0.05
	us := utility.Identical(utility.NewLinear(1, gamma), n)
	r0 := make([]float64, n)
	for i := range r0 {
		r0[i] = 0.5 / float64(n)
	}
	res, err := SolveNash(alloc.Proportional{}, us, r0, NashOptions{})
	if err != nil || !res.Converged {
		t.Fatal("solve failed")
	}
	start := append([]float64(nil), res.R...)
	for i := range start {
		start[i] *= 1.001
	}
	hist := NewtonConvergence(alloc.Proportional{}, us, start, 8)
	if hist[len(hist)-1] < hist[0] {
		t.Errorf("expected Newton residual growth under FIFO, got %v", hist)
	}
}

func TestNashTrajectoryRecordsRounds(t *testing.T) {
	us := utility.Identical(utility.NewLinear(1, 0.3), 2)
	traj := NashTrajectory(alloc.FairShare{}, us, []float64{0.1, 0.2}, NashOptions{}, 5)
	if len(traj) != 6 {
		t.Fatalf("trajectory length %d, want 6", len(traj))
	}
	if traj[0][0] != 0.1 || traj[0][1] != 0.2 {
		t.Error("trajectory should start at r0")
	}
}

func TestSolveNashProfileMismatch(t *testing.T) {
	us := utility.Identical(utility.NewLinear(1, 0.3), 2)
	if _, err := SolveNash(alloc.FairShare{}, us, []float64{0.1, 0.1, 0.1}, NashOptions{}); err == nil {
		t.Error("expected ErrNoProfile")
	}
}

func TestFixedUsersHoldRates(t *testing.T) {
	us := utility.Identical(utility.NewLinear(1, 0.3), 3)
	opt := NashOptions{Free: []bool{true, false, true}}
	res, err := SolveNash(alloc.FairShare{}, us, []float64{0.1, 0.22, 0.1}, opt)
	if err != nil || !res.Converged {
		t.Fatal("solve failed")
	}
	if res.R[1] != 0.22 {
		t.Errorf("fixed user moved: %v", res.R[1])
	}
}

func TestJacobiSchemeConvergesFS(t *testing.T) {
	us := utility.Identical(utility.NewLinear(1, 0.25), 3)
	res, err := SolveNash(alloc.FairShare{}, us, []float64{0.05, 0.1, 0.15},
		NashOptions{Scheme: Jacobi})
	if err != nil || !res.Converged {
		t.Fatalf("Jacobi FS solve failed: %+v", res)
	}
}

func TestOrdinalInvarianceOfNash(t *testing.T) {
	// Rescaling a utility monotonically must not move the equilibrium.
	base := core.Profile{utility.NewLinear(1, 0.2), utility.Log{W: 0.4, Gamma: 1}}
	scaled := core.Profile{
		utility.Scaled{U: base[0], Scale: 12, Shift: 3},
		utility.Scaled{U: base[1], Scale: 0.01, Shift: -99},
	}
	r0 := []float64{0.1, 0.1}
	a, err := SolveNash(alloc.FairShare{}, base, r0, NashOptions{})
	if err != nil || !a.Converged {
		t.Fatal("base solve failed")
	}
	b, err := SolveNash(alloc.FairShare{}, scaled, r0, NashOptions{})
	if err != nil || !b.Converged {
		t.Fatal("scaled solve failed")
	}
	if numeric.VecDist(a.R, b.R) > 1e-6 {
		t.Errorf("Nash moved under ordinal rescaling: %v vs %v", a.R, b.R)
	}
}
