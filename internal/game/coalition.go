package game

import (
	"math/rand"

	"greednet/internal/core"
)

// CoalitionDeviation describes a joint rate deviation that strictly
// improves every member of a coalition relative to a reference point — a
// witness that the point is not a strong equilibrium.
type CoalitionDeviation struct {
	// Members lists the deviating users.
	Members []int
	// Rates is the full rate vector after the deviation (non-members keep
	// their reference rates).
	Rates []float64
	// Gains holds each member's utility improvement (> 0 for all).
	Gains []float64
}

// FindCoalitionDeviation searches for a joint deviation by the given
// coalition that makes every member strictly better off than at the
// reference point r, holding non-members fixed.  The search samples
// scaled and jittered coalition rate vectors.  A nil result means no
// improving deviation was found (the paper's footnote 14: Fair Share Nash
// equilibria resist coalitional manipulation); a non-nil result is a
// constructive counterexample (as FIFO's overgrazing equilibria admit —
// the whole population throttling back helps everyone).
func FindCoalitionDeviation(a core.Allocation, us core.Profile, r []core.Rate, coalition []int, rng *rand.Rand, samples int) *CoalitionDeviation {
	base := a.Congestion(r)
	baseU := make([]float64, len(coalition))
	for k, i := range coalition {
		baseU[k] = us[i].Value(r[i], base[i])
	}
	cand := append([]float64(nil), r...)
	for s := 0; s < samples; s++ {
		copy(cand, r)
		switch s % 3 {
		case 0: // Common scaling of all members.
			scale := 0.3 + 1.4*rng.Float64()
			for _, i := range coalition {
				cand[i] = r[i] * scale
			}
		case 1: // Independent jitter.
			for _, i := range coalition {
				cand[i] = r[i] * (0.3 + 1.4*rng.Float64())
			}
		default: // Fresh draw in (0, 1) scaled to a random budget.
			budget := 0.8 * rng.Float64()
			sum := 0.0
			w := make([]float64, len(coalition))
			for k := range coalition {
				w[k] = rng.ExpFloat64() + 1e-9
				sum += w[k]
			}
			for k, i := range coalition {
				cand[i] = budget * w[k] / sum
			}
		}
		valid := true
		for _, i := range coalition {
			if cand[i] <= 0 {
				valid = false
				break
			}
		}
		if !valid {
			continue
		}
		c := a.Congestion(cand)
		allBetter := true
		gains := make([]float64, len(coalition))
		for k, i := range coalition {
			gains[k] = us[i].Value(cand[i], c[i]) - baseU[k]
			if gains[k] <= 1e-10 {
				allBetter = false
				break
			}
		}
		if allBetter {
			return &CoalitionDeviation{
				Members: append([]int(nil), coalition...),
				Rates:   append([]float64(nil), cand...),
				Gains:   gains,
			}
		}
	}
	return nil
}

// StrongEquilibriumCheck searches all 2ⁿ−1 coalitions (n ≤ 12) for an
// improving joint deviation from r.  It returns the first witness found,
// or nil when every sampled deviation fails — evidence that r is a strong
// equilibrium.
func StrongEquilibriumCheck(a core.Allocation, us core.Profile, r []core.Rate, rng *rand.Rand, samplesPerCoalition int) *CoalitionDeviation {
	n := len(r)
	if n > 12 {
		n = 12
	}
	for mask := 1; mask < 1<<uint(n); mask++ {
		var coalition []int
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				coalition = append(coalition, i)
			}
		}
		if w := FindCoalitionDeviation(a, us, r, coalition, rng, samplesPerCoalition); w != nil {
			return w
		}
	}
	return nil
}
