package game

import (
	"math/rand"

	"greednet/internal/core"
	"greednet/internal/mm1"
)

// ProtectionSlack returns, for each user i, the slack of the paper's
// protection bound (Definition 7): r_i/(1 − N·r_i) − C_i(r).  Negative
// slack means the bound is violated at r.  Fair Share keeps every slack
// nonnegative for every r (Theorem 8); proportional allocations do not.
func ProtectionSlack(a core.Allocation, r []core.Rate) []float64 {
	n := len(r)
	c := a.Congestion(r) //lint:allow feasguard Theorem-8 slack is defined for every r, feasible or not; the Allocation contract covers overload
	out := make([]float64, n)
	for i := range r {
		out[i] = mm1.ProtectionBound(n, r[i]) - c[i] //lint:allow feasguard Definition-7 bound evaluated wherever the slack is probed; +Inf is the honest value past 1/N
	}
	return out
}

// AdversarialProtection holds the result of an adversarial search against
// the protection bound for one victim user.
type AdversarialProtection struct {
	// Victim is the protected user's index (always 0 in the search).
	Victim int
	// Rate is the victim's fixed rate.
	Rate float64
	// Bound is r/(1 − N·r), the guarantee being tested.
	Bound float64
	// WorstCongestion is the largest C_victim found over the attack space.
	WorstCongestion float64
	// WorstAttack is the full rate vector attaining it.
	WorstAttack []float64
	// Violated is true when WorstCongestion exceeds Bound by more than a
	// numeric tolerance.
	Violated bool
}

// AttackProtection searches adversarially for rate vectors of the other
// n−1 users that maximize user 0's congestion when user 0 sends at rate.
// It combines random sampling with coordinate ascent.  The search space is
// capped so the total load stays below maxLoad (use values < 1 for
// nonstalling comparability, or slightly above to probe the overload
// behaviour FS tolerates).
func AttackProtection(a core.Allocation, rate float64, n int, maxLoad float64, rng *rand.Rand, iters int) AdversarialProtection {
	res := AdversarialProtection{
		Victim: 0,
		Rate:   rate,
		Bound:  mm1.ProtectionBound(n, rate), //lint:allow feasguard the guarantee being attacked; its value at the victim rate is the test fixture
	}
	r := make([]float64, n)
	best := append([]float64(nil), r...)
	bestC := 0.0
	budget := maxLoad - rate
	if budget <= 0 {
		budget = 0.01
	}
	for k := 0; k < iters; k++ {
		r[0] = rate
		// Random split of a random fraction of the remaining budget.
		frac := rng.Float64()
		weights := make([]float64, n-1)
		sum := 0.0
		for i := range weights {
			weights[i] = rng.ExpFloat64() + 1e-9
			sum += weights[i]
		}
		for i := range weights {
			r[i+1] = budget * frac * weights[i] / sum
		}
		if c := a.CongestionOf(r, 0); c > bestC { //lint:allow feasguard adversarial search deliberately spans overload; FS protection under attack is the claim
			bestC = c
			copy(best, r)
		}
	}
	// Coordinate ascent refinement from the best random attack.
	copy(r, best)
	for pass := 0; pass < 4; pass++ {
		for i := 1; i < n; i++ {
			lo, hi := 1e-9, budget
			// Golden-section maximize C_0 over r[i].
			const invPhi = 0.6180339887498949
			c := hi - invPhi*(hi-lo)
			d := lo + invPhi*(hi-lo)
			eval := func(x float64) float64 {
				r[i] = x
				return a.CongestionOf(r, 0) //lint:allow feasguard golden-section probe of the attack space; overload evaluations are intended
			}
			fc, fd := eval(c), eval(d)
			for hi-lo > 1e-9 {
				if fc > fd {
					hi, d, fd = d, c, fc
					c = hi - invPhi*(hi-lo)
					fc = eval(c)
				} else {
					lo, c, fc = c, d, fd
					d = lo + invPhi*(hi-lo)
					fd = eval(d)
				}
			}
			r[i] = lo + (hi-lo)/2
			if v := a.CongestionOf(r, 0); v > bestC { //lint:allow feasguard refinement step of the adversarial search; overload evaluations are intended
				bestC = v
				copy(best, r)
			} else {
				copy(r, best)
			}
		}
	}
	res.WorstCongestion = bestC
	res.WorstAttack = best
	res.Violated = bestC > res.Bound*(1+1e-9)+1e-12
	return res
}
