package game

import (
	"testing"

	"greednet/internal/alloc"
	"greednet/internal/utility"
)

// TestMultiStartNashWorkerCountInvariant checks the pooled solver is a
// pure speedup: distinct limits and per-start results must be identical
// (bitwise — the solves are deterministic) for every worker count.
func TestMultiStartNashWorkerCountInvariant(t *testing.T) {
	us := utility.Identical(utility.NewLinear(1, 0.25), 3)
	var starts [][]float64
	for _, s := range []float64{0.05, 0.1, 0.2, 0.3, 0.08, 0.15} {
		starts = append(starts, []float64{s, s / 2, s / 3})
	}

	refDistinct, refAll := MultiStartNashWorkers(1, alloc.FairShare{}, us, starts, NashOptions{}, 1e-6)
	if len(refAll) != len(starts) {
		t.Fatalf("reference: %d/%d starts converged", len(refAll), len(starts))
	}
	if len(refDistinct) != 1 {
		t.Fatalf("Fair Share must have one distinct limit (Theorem 4), got %d", len(refDistinct))
	}

	for _, workers := range []int{2, 8, 0} {
		distinct, all := MultiStartNashWorkers(workers, alloc.FairShare{}, us, starts, NashOptions{}, 1e-6)
		if len(distinct) != len(refDistinct) || len(all) != len(refAll) {
			t.Fatalf("workers=%d: %d distinct / %d all, want %d / %d",
				workers, len(distinct), len(all), len(refDistinct), len(refAll))
		}
		for k := range all {
			for i := range all[k].R {
				if all[k].R[i] != refAll[k].R[i] { //lint:allow floateq deterministic solves must agree bitwise across worker counts
					t.Errorf("workers=%d: start %d rate %d = %v, want %v",
						workers, k, i, all[k].R[i], refAll[k].R[i])
				}
			}
		}
	}
}
