package game

import (
	"math"
	"sync/atomic"
	"testing"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/utility"
)

// TestMultiStartNashWorkerCountInvariant checks the pooled solver is a
// pure speedup: distinct limits and per-start results must be identical
// (bitwise — the solves are deterministic) for every worker count.
func TestMultiStartNashWorkerCountInvariant(t *testing.T) {
	us := utility.Identical(utility.NewLinear(1, 0.25), 3)
	var starts [][]float64
	for _, s := range []float64{0.05, 0.1, 0.2, 0.3, 0.08, 0.15} {
		starts = append(starts, []float64{s, s / 2, s / 3})
	}

	ref := MultiStartNashWorkers(1, alloc.FairShare{}, us, starts, NashOptions{}, 1e-6)
	if len(ref.All) != len(starts) || ref.Dropped != 0 {
		t.Fatalf("reference: %d/%d starts converged (%d dropped)", len(ref.All), len(starts), ref.Dropped)
	}
	if len(ref.Distinct) != 1 {
		t.Fatalf("Fair Share must have one distinct limit (Theorem 4), got %d", len(ref.Distinct))
	}

	for _, workers := range []int{2, 8, 0} {
		res := MultiStartNashWorkers(workers, alloc.FairShare{}, us, starts, NashOptions{}, 1e-6)
		if len(res.Distinct) != len(ref.Distinct) || len(res.All) != len(ref.All) || res.Dropped != ref.Dropped {
			t.Fatalf("workers=%d: %d distinct / %d all / %d dropped, want %d / %d / %d",
				workers, len(res.Distinct), len(res.All), res.Dropped, len(ref.Distinct), len(ref.All), ref.Dropped)
		}
		for k := range res.All {
			for i := range res.All[k].R {
				if res.All[k].R[i] != ref.All[k].R[i] { // deterministic solves must agree bitwise across worker counts
					t.Errorf("workers=%d: start %d rate %d = %v, want %v",
						workers, k, i, res.All[k].R[i], ref.All[k].R[i])
				}
			}
		}
	}
}

// countingAlloc wraps an Allocation and counts congestion evaluations —
// a deterministic proxy for solver work (every best-response probe goes
// through one of these methods).
type countingAlloc struct {
	inner core.Allocation
	calls *atomic.Int64
}

func (c countingAlloc) Name() string { return c.inner.Name() }
func (c countingAlloc) Congestion(r []core.Rate) []core.Congestion {
	c.calls.Add(1)
	return c.inner.Congestion(r)
}
func (c countingAlloc) CongestionOf(r []core.Rate, i int) core.Congestion {
	c.calls.Add(1)
	return c.inner.CongestionOf(r, i)
}

// TestMultiStartNashDedupsDuplicateStarts pins the duplicate-start fix:
// bit-identical starts must be solved once, yet the result must read as
// if every start ran — All one entry per start, duplicates bitwise equal
// to their representative, Dropped untouched.
func TestMultiStartNashDedupsDuplicateStarts(t *testing.T) {
	us := utility.Identical(utility.NewLinear(1, 0.25), 3)
	s1 := []float64{0.05, 0.025, 0.01}
	s2 := []float64{0.2, 0.1, 0.05}
	dup := [][]float64{s1, s2, append([]float64(nil), s1...), s1, append([]float64(nil), s2...)}
	uniq := [][]float64{s1, s2}

	var dupCalls, uniqCalls atomic.Int64
	dres := MultiStartNashWorkers(1, countingAlloc{alloc.FairShare{}, &dupCalls}, us, dup, NashOptions{}, 1e-6)
	ures := MultiStartNashWorkers(1, countingAlloc{alloc.FairShare{}, &uniqCalls}, us, uniq, NashOptions{}, 1e-6)

	// Identical work: the three extra (duplicate) starts must not have
	// cost a single congestion evaluation.
	if dupCalls.Load() != uniqCalls.Load() {
		t.Errorf("duplicate starts re-solved: %d congestion calls with dupes, %d without",
			dupCalls.Load(), uniqCalls.Load())
	}
	if len(dres.All) != len(dup) || dres.Dropped != 0 {
		t.Fatalf("All = %d, Dropped = %d; want %d, 0", len(dres.All), dres.Dropped, len(dup))
	}
	if len(dres.Distinct) != 1 {
		t.Fatalf("Fair Share must have one distinct limit, got %d", len(dres.Distinct))
	}
	// Duplicates carry their representative's exact result.
	for _, pair := range [][2]int{{0, 2}, {0, 3}, {1, 4}} {
		a, b := dres.All[pair[0]], dres.All[pair[1]]
		for i := range a.R {
			if math.Float64bits(a.R[i]) != math.Float64bits(b.R[i]) {
				t.Errorf("starts %d and %d are bit-identical but solved differently: R[%d] %v vs %v",
					pair[0], pair[1], i, a.R[i], b.R[i])
			}
		}
	}
	// And the unique-only sweep agrees with the representatives.
	for i := range ures.All[0].R {
		if math.Float64bits(dres.All[0].R[i]) != math.Float64bits(ures.All[0].R[i]) {
			t.Errorf("dedup changed the solve itself: R[%d] %v vs %v", i, dres.All[0].R[i], ures.All[0].R[i])
		}
	}
}
