package game

import (
	"testing"

	"greednet/internal/alloc"
	"greednet/internal/utility"
)

// TestMultiStartNashWorkerCountInvariant checks the pooled solver is a
// pure speedup: distinct limits and per-start results must be identical
// (bitwise — the solves are deterministic) for every worker count.
func TestMultiStartNashWorkerCountInvariant(t *testing.T) {
	us := utility.Identical(utility.NewLinear(1, 0.25), 3)
	var starts [][]float64
	for _, s := range []float64{0.05, 0.1, 0.2, 0.3, 0.08, 0.15} {
		starts = append(starts, []float64{s, s / 2, s / 3})
	}

	ref := MultiStartNashWorkers(1, alloc.FairShare{}, us, starts, NashOptions{}, 1e-6)
	if len(ref.All) != len(starts) || ref.Dropped != 0 {
		t.Fatalf("reference: %d/%d starts converged (%d dropped)", len(ref.All), len(starts), ref.Dropped)
	}
	if len(ref.Distinct) != 1 {
		t.Fatalf("Fair Share must have one distinct limit (Theorem 4), got %d", len(ref.Distinct))
	}

	for _, workers := range []int{2, 8, 0} {
		res := MultiStartNashWorkers(workers, alloc.FairShare{}, us, starts, NashOptions{}, 1e-6)
		if len(res.Distinct) != len(ref.Distinct) || len(res.All) != len(ref.All) || res.Dropped != ref.Dropped {
			t.Fatalf("workers=%d: %d distinct / %d all / %d dropped, want %d / %d / %d",
				workers, len(res.Distinct), len(res.All), res.Dropped, len(ref.Distinct), len(ref.All), ref.Dropped)
		}
		for k := range res.All {
			for i := range res.All[k].R {
				if res.All[k].R[i] != ref.All[k].R[i] { // deterministic solves must agree bitwise across worker counts
					t.Errorf("workers=%d: start %d rate %d = %v, want %v",
						workers, k, i, res.All[k].R[i], ref.All[k].R[i])
				}
			}
		}
	}
}
