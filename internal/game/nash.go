package game

import (
	"context"
	"errors"
	"math"

	"greednet/internal/core"
	"greednet/internal/numeric"
	"greednet/internal/parallel"
)

// UpdateScheme selects how best responses are applied during Nash
// fixed-point iteration.
type UpdateScheme int

const (
	// GaussSeidel updates users one at a time, each seeing the others'
	// freshest rates.  This models asynchronous self-optimization and is
	// the default.
	GaussSeidel UpdateScheme = iota
	// Jacobi updates all users simultaneously from the previous round's
	// rates — the synchronous dynamics whose stability §4.2.3 analyzes.
	Jacobi
)

// NashOptions configures SolveNash.
type NashOptions struct {
	// Scheme is the update order; default GaussSeidel.
	Scheme UpdateScheme
	// MaxIter bounds best-response rounds; default 500.
	MaxIter int
	// Tol is the ∞-norm rate-change convergence threshold; default 1e-7
	// (the inner golden-section searches carry ≈1e-9 argmax noise, so
	// tolerances below ≈1e-8 can keep the loop jittering forever).
	Tol float64
	// Damping in (0, 1] blends the best response with the previous rate:
	// r ← (1−d)·r + d·BR.  Default 1 (undamped).
	Damping float64
	// BR configures each inner best-response search.
	BR BROptions
	// Free, when non-nil, marks which users self-optimize; users with
	// Free[i] == false hold their initial rate (the paper's non-optimizing
	// users / subsystems).
	Free []bool
}

func (o NashOptions) withDefaults(n int) NashOptions {
	if o.MaxIter <= 0 {
		o.MaxIter = 500
	}
	if o.Tol <= 0 {
		o.Tol = 1e-7
	}
	if o.Damping <= 0 || o.Damping > 1 {
		o.Damping = 1
	}
	if o.Free == nil {
		o.Free = make([]bool, n)
		for i := range o.Free {
			o.Free[i] = true
		}
	}
	return o
}

// NashResult reports the outcome of a Nash solve.
type NashResult struct {
	// R and C are the final rates and congestions.
	R, C []float64
	// Converged is true when the rate change fell below Tol.
	Converged bool
	// Iters is the number of best-response rounds performed.
	Iters int
	// MaxGain is the largest remaining unilateral deviation gain at R, a
	// direct certificate of (ε-)Nash-ness.
	MaxGain float64
}

// ErrNoProfile is returned when the profile and start vector disagree.
var ErrNoProfile = errors.New("game: profile and rate vector lengths differ")

// SolveNash runs best-response iteration from r0 under allocation a and
// utility profile us.  It converges for the Fair Share allocation from any
// start (Theorems 4–5); for other disciplines it may cycle or diverge, in
// which case Converged is false.
func SolveNash(a core.Allocation, us core.Profile, r0 []core.Rate, opt NashOptions) (NashResult, error) {
	return SolveNashCtx(context.Background(), a, us, r0, opt)
}

// SolveNashCtx is SolveNash under a context, polled once per best-response
// round (each round performs n inner line searches, so the poll is
// amortized to nothing).  On cancellation it returns the last iterate —
// R/C/Iters describe real partial progress — together with the typed
// core.ErrCanceled / core.ErrDeadline, which distinguishes "the caller
// gave up" from "the dynamics diverged" (the latter is a nil error with
// Converged == false at MaxIter).
func SolveNashCtx(ctx context.Context, a core.Allocation, us core.Profile, r0 []core.Rate, opt NashOptions) (NashResult, error) {
	return SolveNashWS(ctx, nil, a, us, r0, opt)
}

// SolveNashWS is SolveNashCtx with a caller-owned workspace (nil means
// allocate transient scratch): the fixed-point iterate, the Jacobi round
// buffer, and every inner best-response search reuse ws across rounds —
// and across solves when the caller runs many (trajectories, sweeps,
// Stackelberg inner loops).  The returned R and C are freshly allocated;
// only scratch lives in the workspace.  Results are bit-identical to
// SolveNashCtx, which delegates here.
func SolveNashWS(ctx context.Context, ws *Workspace, a core.Allocation, us core.Profile, r0 []core.Rate, opt NashOptions) (NashResult, error) {
	n := len(r0)
	if len(us) != n {
		return NashResult{}, ErrNoProfile
	}
	if ws == nil {
		ws = NewWorkspace()
	}
	opt = opt.withDefaults(n)
	r := ws.iterate(n)
	copy(r, r0)
	next := ws.nextVec(n)
	iters := 0
	converged := false
	for iters = 1; iters <= opt.MaxIter; iters++ {
		if err := core.CtxErr(ctx); err != nil {
			// Abandoned mid-solve: report the last iterate's rates and the
			// rounds completed; C stays nil (the point was never accepted,
			// so no congestion report is owed for it).
			return NashResult{R: append([]float64(nil), r...), Iters: iters - 1}, err
		}
		maxDelta := 0.0
		switch opt.Scheme {
		case Jacobi:
			copy(next, r)
			for i := 0; i < n; i++ {
				if !opt.Free[i] {
					continue
				}
				br, _ := BestResponseWS(ws, a, us[i], r, i, opt.BR)
				next[i] = (1-opt.Damping)*r[i] + opt.Damping*br
			}
			for i := 0; i < n; i++ {
				if d := math.Abs(next[i] - r[i]); d > maxDelta {
					maxDelta = d
				}
			}
			copy(r, next)
		default: // GaussSeidel
			for i := 0; i < n; i++ {
				if !opt.Free[i] {
					continue
				}
				br, _ := BestResponseWS(ws, a, us[i], r, i, opt.BR)
				nr := (1-opt.Damping)*r[i] + opt.Damping*br
				if d := math.Abs(nr - r[i]); d > maxDelta {
					maxDelta = d
				}
				r[i] = nr
			}
		}
		if maxDelta <= opt.Tol {
			converged = true
			break
		}
	}
	res := NashResult{
		R:         append([]float64(nil), r...),
		C:         a.Congestion(r), //lint:allow feasguard reports C(r) at the solved point; the Allocation contract defines it (with +Inf) on all of R+^n
		Converged: converged,
		Iters:     iters,
	}
	for i := 0; i < n; i++ {
		if !opt.Free[i] {
			continue
		}
		if err := core.CtxErr(ctx); err != nil {
			// Abandoned mid-audit: each gain check runs a full best-response
			// search, so this loop is as cancelable as the rounds above.  The
			// solve itself finished — res is valid — but MaxGain covers only
			// the players audited so far, so it is a lower bound.
			return res, err
		}
		if g := deviationGainWS(ws, a, us[i], res.R, i, opt.BR); g > res.MaxGain {
			res.MaxGain = g
		}
	}
	return res, nil
}

// NashTrajectory records the rate vectors visited by best-response
// iteration (including the start), up to maxRounds rounds, without any
// convergence requirement.  Useful for plotting and stability experiments.
func NashTrajectory(a core.Allocation, us core.Profile, r0 []core.Rate, opt NashOptions, maxRounds int) [][]float64 {
	n := len(r0)
	opt = opt.withDefaults(n)
	opt.MaxIter = 1
	// One workspace serves every round; each round's SolveNashWS returns a
	// freshly allocated R, so the trajectory can keep it directly instead
	// of re-copying (the per-round append+copy this loop historically did).
	ws := NewWorkspace()
	traj := make([][]float64, 0, maxRounds+1)
	traj = append(traj, append([]float64(nil), r0...))
	r := r0
	for k := 0; k < maxRounds; k++ {
		res, err := SolveNashWS(context.Background(), ws, a, us, r, opt)
		if err != nil {
			break
		}
		r = res.R
		traj = append(traj, r)
	}
	return traj
}

// MultiStartResult reports a multi-start Nash search.  Dropped makes the
// failure mode visible: a sweep where 0 of N starts converged (Dropped ==
// N, All empty) is distinguishable from a sweep that was handed no starts
// (Dropped == 0, All empty) — under the proportional allocation whole
// start sets legitimately fail to converge, and silently thin results
// used to read as "fewer starts".
type MultiStartResult struct {
	// Distinct holds one representative per distinct limit (within tol in
	// the ∞-norm), in first-seen start order.
	Distinct []NashResult
	// All holds every converged solve, in start order.
	All []NashResult
	// Dropped counts starts whose solve errored or failed to converge.
	Dropped int
}

// MultiStartNash solves from several starting points and reports the
// distinct limits found (within tol in the ∞-norm).  For Fair Share
// Distinct always has exactly one element (Theorem 4).  The independent
// solves fan out across runtime.GOMAXPROCS(0) workers; use
// MultiStartNashWorkers to bound the pool.  Bit-identical starts are
// solved once — duplicates share the first occurrence's result (the
// solves are deterministic, so nothing else could come back), and All
// still carries one entry per start, in start order.
func MultiStartNash(a core.Allocation, us core.Profile, starts [][]core.Rate, opt NashOptions, tol float64) MultiStartResult {
	return MultiStartNashWorkers(0, a, us, starts, opt, tol)
}

// MultiStartNashWorkers is MultiStartNash on a pool of the given size
// (≤ 0 means runtime.GOMAXPROCS(0)).  Each start's solve is independent
// and deterministic, and deduplication walks the solved starts in input
// order, so the result is identical for every worker count.
func MultiStartNashWorkers(workers int, a core.Allocation, us core.Profile, starts [][]core.Rate, opt NashOptions, tol float64) MultiStartResult {
	// The background context cannot fire, so the error path is dead.
	res, _ := MultiStartNashCtx(context.Background(), workers, a, us, starts, opt, tol)
	return res
}

// MultiStartNashCtx is MultiStartNashWorkers under a context: the pool
// stops claiming new starts once ctx fires and the typed core.ErrCanceled
// / core.ErrDeadline is returned.  A canceled search's MultiStartResult
// covers only the starts that completed (never-claimed starts count as
// Dropped), so it is a lower bound, not a verdict.
func MultiStartNashCtx(ctx context.Context, workers int, a core.Allocation, us core.Profile, starts [][]core.Rate, opt NashOptions, tol float64) (MultiStartResult, error) {
	// Sweep generators routinely emit bit-identical starts (grid corners,
	// symmetric seeds), and the solves are deterministic, so a duplicate
	// start can only reproduce the first one's result.  Dedup by the
	// exact bit pattern of the start vector — order-sensitive, a permuted
	// start is a different start — fan out one solve per unique start,
	// and expand results back so All / Distinct / Dropped read exactly as
	// if every start had been solved independently.
	uniqOf := make(map[string]int, len(starts))
	reps := make([]int, 0, len(starts)) // first-occurrence start index per unique vector
	uniqIdx := make([]int, len(starts)) // start index -> unique slot
	for k, st := range starts {
		if err := core.CtxErr(ctx); err != nil {
			return MultiStartResult{Dropped: len(starts)}, err
		}
		key := make([]byte, 0, 8*len(st))
		for _, v := range st {
			b := math.Float64bits(float64(v))
			key = append(key, byte(b), byte(b>>8), byte(b>>16), byte(b>>24),
				byte(b>>32), byte(b>>40), byte(b>>48), byte(b>>56))
		}
		j, seen := uniqOf[string(key)]
		if !seen {
			j = len(reps)
			uniqOf[string(key)] = j
			reps = append(reps, k)
		}
		uniqIdx[k] = j
	}
	solved := make([]NashResult, len(reps))
	converged := make([]bool, len(reps))
	ctxErr := parallel.MapOrderedCtx(ctx, workers, len(reps), func(j int) error {
		res, err := SolveNashCtx(ctx, a, us, starts[reps[j]], opt)
		if err != nil || !res.Converged {
			return nil // dropped, not fatal: the count reports it
		}
		solved[j] = res
		converged[j] = true
		return nil
	})
	var out MultiStartResult
	//lint:allow ctxflow O(starts*distinct) dedup of already-solved results; every cancelable solve is behind us and VecDist is ns-scale
	for k := range starts {
		if !converged[uniqIdx[k]] {
			out.Dropped++
			continue
		}
		res := solved[uniqIdx[k]]
		out.All = append(out.All, res)
		dup := false
		for _, d := range out.Distinct {
			if numeric.VecDist(d.R, res.R) <= tol {
				dup = true
				break
			}
		}
		if !dup {
			out.Distinct = append(out.Distinct, res)
		}
	}
	return out, ctxErr
}
