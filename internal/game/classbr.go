package game

import (
	"math"

	"greednet/internal/core"
	"greednet/internal/mm1"
)

// classFairShareBR evaluates one deviating member's Fair Share congestion
// in a class-aggregated game — the class analogue of alloc.FairShareBR,
// with the same prefix-sum design over K rate blocks instead of N users:
// Reset is O(K log K), each CongestionOf/OwnDerivs probe is O(log K),
// and nothing allocates once the buffers have reached K's size.
//
// Block arithmetic follows the summation-order contract of DESIGN.md §13:
// a class of multiplicity m at rate ρ starting at sorted position s
// contributes one load step x = fl(float64(n−s+1)·ρ + σ) and one cost
// step (g(x) − g_prev)/float64(n−s+1), and advances the prefix by
// σ ← fl(σ + float64(m)·ρ).  At m = 1 both fl(1·ρ) = ρ and the single
// step coincide exactly with the per-user chain, so at K = N the
// evaluator is bit-identical to alloc.FairShareBR by construction; at
// m > 1 the within-class chain steps (which agree only to rounding in
// the exact solver) are collapsed into the first member's step.
type classFairShareBR struct {
	n  int // total users Σ counts, including the deviator
	d  int // the deviating class's canonical index
	nb int // number of nonempty blocks among the others

	keys   []float64 // scratch: block rates in canonical-class order
	brate  []float64 // block rates, stably sorted ascending
	borig  []int     // canonical class index of each sorted block
	bcount []int     // member count of each sorted block (deviator excluded)
	bstart []int     // 1-based others-position of each block's first member; bstart[nb] = n
	// sigma[j] = prefix sum through the first j blocks, advanced per the
	// contract; filled for every j even past the flood point (OwnDerivs
	// needs the prefix regardless).
	sigma []float64
	// gx[j] = g at block j's step and cacc[j] = cost accumulated through
	// block j, valid for blocks before the flood.
	gx   []float64
	cacc []float64
	// floodPos is the 1-based position of the first member of the first
	// flooded block; n+1 when no block floods (past every position the
	// deviator or the full chain can occupy).
	floodPos int

	ws core.Workspace
}

// Reset prepares the evaluator for the deviating class d of the per-class
// rate vector r with multiplicities counts.  The deviator is the class's
// first member in canonical expansion order, so its own class enters the
// blocks with multiplicity counts[d]−1 (dropped entirely at zero).
//
//lint:hotpath
func (b *classFairShareBR) Reset(r []core.Rate, counts []int, d int) {
	kk := len(r)
	n := 0
	for _, m := range counts {
		n += m
	}
	b.n, b.d = n, d
	if cap(b.keys) < kk {
		b.keys = make([]float64, kk)
		b.brate = make([]float64, kk)
		b.borig = make([]int, kk)
		b.bcount = make([]int, kk)
		b.gx = make([]float64, kk)
		b.cacc = make([]float64, kk)
	}
	if cap(b.bstart) < kk+1 {
		b.bstart = make([]int, kk+1)
		b.sigma = make([]float64, kk+1)
	}
	// Gather the nonempty other-blocks in canonical order: every class,
	// with the deviating class's multiplicity reduced by one.
	nb := 0
	b.keys = b.keys[:kk]
	b.borig = b.borig[:kk]
	b.bcount = b.bcount[:kk]
	for j := 0; j < kk; j++ {
		m := counts[j]
		if j == d {
			m--
		}
		if m == 0 {
			continue
		}
		b.keys[nb] = r[j]
		b.borig[nb] = j
		b.bcount[nb] = m
		nb++
	}
	// Compact scratch views sized to the block count.
	b.nb = nb
	b.keys = b.keys[:nb]
	b.brate = b.brate[:nb]
	b.gx = b.gx[:nb]
	b.cacc = b.cacc[:nb]
	b.bstart = b.bstart[:nb+1]
	b.sigma = b.sigma[:nb+1]

	// Stable argsort of the blocks by rate: ties keep canonical-class
	// order, exactly as a stable per-user sort orders the expansion.
	perm := b.ws.Ascending(b.keys)
	for k, p := range perm {
		b.brate[k] = b.keys[p]
	}
	// Permute borig/bcount along perm.  In-place reads would race writes,
	// so stage through gx/cacc — float scratch the chain pass below
	// rewrites anyway; class indices and counts are far below 2^53, so
	// the float round trip is exact.
	for k, p := range perm {
		b.gx[k] = float64(b.bcount[p])
		b.cacc[k] = float64(b.borig[p])
	}
	for k := 0; k < nb; k++ {
		b.bcount[k] = int(b.gx[k])
		b.borig[k] = int(b.cacc[k])
	}

	b.bstart[0] = 1
	for k := 0; k < nb; k++ {
		b.bstart[k+1] = b.bstart[k] + b.bcount[k]
	}

	b.sigma[0] = 0
	prefix := 0.0
	for k := 0; k < nb; k++ {
		prefix += float64(b.bcount[k]) * b.brate[k]
		b.sigma[k+1] = prefix
	}

	b.floodPos = n + 1
	prevG := 0.0
	c := 0.0
	for k := 0; k < nb; k++ {
		s := b.bstart[k]
		xk := float64(n-s+1)*b.brate[k] + b.sigma[k]
		gk := mm1.G(xk)
		if math.IsInf(gk, 1) {
			b.floodPos = s
			break
		}
		c += (gk - prevG) / float64(n-s+1)
		b.gx[k] = gk
		b.cacc[k] = c
		prevG = gk
	}
}

// precedes reports whether sorted block j comes wholly before the deviator
// in the stable ascending order when the deviator sends x.  All members of
// a block share a rate and a canonical class, so a block precedes or
// follows as a unit; ties break by canonical class index — the deviator is
// its class's first member, so even its own residual block follows it.
func (b *classFairShareBR) precedes(j int, x float64) bool {
	o := b.brate[j]
	if o < x {
		return true
	}
	if x < o {
		return false
	}
	return b.borig[j] < b.d
}

// blockPos returns the index of the first sorted block that does not
// precede the deviator sending x (nb when all do), by binary search.
func (b *classFairShareBR) blockPos(x float64) int {
	lo, hi := 0, b.nb
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b.precedes(mid, x) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// CongestionOf returns the deviating member's Fair Share congestion when
// it sends x and every other class holds its Reset rate — O(log K), zero
// allocations, bit-identical to alloc.FairShareBR at K = N.
//
//lint:hotpath
func (b *classFairShareBR) CongestionOf(x core.Rate) core.Congestion {
	j := b.blockPos(x)
	k := b.bstart[j]
	if k > b.floodPos {
		// A class before the deviator already saturated the chain.
		return math.Inf(1)
	}
	xk := float64(b.n-k+1)*x + b.sigma[j]
	gk := mm1.G(xk)
	if math.IsInf(gk, 1) {
		return math.Inf(1)
	}
	prevG, prevC := 0.0, 0.0
	if j >= 1 {
		prevG, prevC = b.gx[j-1], b.cacc[j-1]
	}
	return prevC + (gk-prevG)/float64(b.n-k+1)
}

// OwnDerivs returns (∂C/∂x, ∂²C/∂x²) for the deviating member at x, the
// class analogue of alloc.FairShareBR.OwnDerivs.
//
//lint:hotpath
func (b *classFairShareBR) OwnDerivs(x core.Rate) (float64, float64) {
	j := b.blockPos(x)
	k := b.bstart[j]
	xk := float64(b.n-k+1)*x + b.sigma[j]
	return mm1.GPrime(xk), float64(b.n-k+1) * mm1.GPrime2(xk)
}

// classFairShareCongestion writes each class's Fair Share congestion (its
// first member's, under the §13 contract) into dst, running the block
// chain once over all K classes with full multiplicities — O(K log K),
// allocation-free given a prepared evaluator's scratch.  At K = N the
// chain degenerates to alloc.FairShare.CongestionInto's per-user chain
// and is bit-identical to it.
//
//lint:hotpath
func (b *classFairShareBR) classFairShareCongestion(dst []core.Congestion, r []core.Rate, counts []int) {
	// Reuse Reset's block machinery with no deviator: d = −1 keeps every
	// class at full multiplicity (no index matches), and Reset's chain
	// pass has already accumulated each block's cost share in cacc.
	b.Reset(r, counts, -1)
	for k := 0; k < b.nb; k++ {
		if b.bstart[k] >= b.floodPos {
			// This and all larger-rate classes are flooded.
			for m := k; m < b.nb; m++ {
				dst[b.borig[m]] = math.Inf(1)
			}
			return
		}
		dst[b.borig[k]] = b.cacc[k]
	}
}

// classPropSum accumulates Σ multiplicity-weighted rates in canonical
// class order with the deviating class's first member sending x — the
// class form of mm1.Sum over the expansion, exact at K = N where every
// fl(1·ρ) = ρ reproduces the per-user term sequence.
func classPropSum(r []core.Rate, counts []int, d int, x float64) float64 {
	s := 0.0
	for j := 0; j < len(r); j++ {
		if j == d {
			s += x
			if m := counts[j] - 1; m > 0 {
				s += float64(m) * r[j]
			}
			continue
		}
		s += float64(counts[j]) * r[j]
	}
	return s
}

// classPropCongestionOf is the deviating member's proportional (FIFO)
// congestion x/(1−s), mirroring alloc.Proportional.CongestionInto's
// saturation test.
func classPropCongestionOf(r []core.Rate, counts []int, d int, x float64) core.Congestion {
	s := classPropSum(r, counts, d, x)
	if s >= 1 {
		return math.Inf(1)
	}
	return x / (1 - s)
}

// classPropCongestion writes each class's proportional congestion into
// dst: s sums fl(count·rate) in canonical order, then C_j = r_j/(1−s).
func classPropCongestion(dst []core.Congestion, r []core.Rate, counts []int) {
	s := 0.0
	for j := range r {
		s += float64(counts[j]) * r[j]
	}
	if s >= 1 {
		for j := range dst {
			dst[j] = math.Inf(1)
		}
		return
	}
	dd := 1 - s
	for j, rj := range r {
		dst[j] = rj / dd
	}
}
