// Package game implements the game-theoretic machinery of the paper:
// best-response computation, Nash equilibrium solvers, Pareto first-
// derivative conditions and dominance searches, envy and unilateral
// envy-freeness, the out-of-equilibrium protection bound, Stackelberg
// (leader/follower) equilibria, and the Newton relaxation matrix of
// §4.2.3 with its nilpotency/stability analysis.
package game

import (
	"math"

	"greednet/internal/alloc"
	"greednet/internal/core"
)

// BROptions controls the one-dimensional best-response search.
type BROptions struct {
	// Lo and Hi bound the searched rate interval; defaults (1e-9, 1−1e-9).
	Lo, Hi float64
	// GridPoints seeds the search with an even grid before golden-section
	// refinement, making it robust to the −Inf plateaus allocations create
	// outside their finite region.  Default 64.
	GridPoints int
	// Tol is the argument tolerance of the refinement.  Default 1e-10.
	Tol float64
}

func (o BROptions) withDefaults() BROptions {
	if o.Lo <= 0 {
		o.Lo = 1e-9
	}
	if o.Hi <= 0 || o.Hi >= 1 {
		o.Hi = 1 - 1e-9
	}
	if o.GridPoints <= 0 {
		o.GridPoints = 64
	}
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	return o
}

// Payoff returns user i's utility at rate vector r under allocation a.
func Payoff(a core.Allocation, u core.Utility, r []core.Rate, i int) float64 {
	return u.Value(r[i], a.CongestionOf(r, i))
}

// BestResponse maximizes user i's utility over its own rate, holding the
// other rates in r fixed.  It returns the maximizing rate and the utility
// achieved.  The search is grid-seeded golden section over [Lo, Hi].
func BestResponse(a core.Allocation, u core.Utility, r []core.Rate, i int, opt BROptions) (x, val float64) {
	return BestResponseWS(nil, a, u, r, i, opt)
}

// BestResponseWS is BestResponse with solver-owned scratch (nil ws means
// allocate transient scratch).  Results are bit-identical to BestResponse
// for every allocation:
//
//   - Under Fair Share the ~64 grid + golden-section probes go through the
//     incremental evaluator — one O(N log N) Reset, then O(log N) per probe
//     instead of a full sort + vector evaluation — whose values equal the
//     full evaluation bit for bit (see alloc.FairShareBR).
//   - Disciplines providing core.AllocationInto evaluate into the
//     workspace's congestion buffer with the same arithmetic as their
//     allocating path.
//   - Everything else runs the historical CongestionOf probe, with only
//     the r|ⁱx copy hoisted into the workspace.
//
//lint:hotpath
func BestResponseWS(ws *Workspace, a core.Allocation, u core.Utility, r []core.Rate, i int, opt BROptions) (x, val float64) {
	opt = opt.withDefaults()
	if ws == nil {
		ws = NewWorkspace() //lint:allow allocfree nil-workspace convenience fallback; hot callers (SolveNashWS, sweeps) pass a real workspace
	}
	if _, ok := a.(alloc.FairShare); ok {
		br := &ws.fsbr
		br.Reset(r, i)
		h := func(x float64) float64 { //lint:allow allocfree non-escaping closure: maximizeGrid only calls it, so it stays on the stack (the allocs_per_op gate pins this)
			return u.Value(x, br.CongestionOf(x))
		}
		return maximizeGrid(h, opt.Lo, opt.Hi, opt.GridPoints, opt.Tol)
	}
	rr := ws.rates(len(r))
	copy(rr, r)
	if ai, ok := a.(core.AllocationInto); ok {
		dst := ws.congestion(len(r))
		h := func(x float64) float64 { //lint:allow allocfree non-escaping closure: maximizeGrid only calls it, so it stays on the stack (the allocs_per_op gate pins this)
			rr[i] = x
			return u.Value(x, ai.CongestionInto(&ws.aws, dst, rr)[i])
		}
		return maximizeGrid(h, opt.Lo, opt.Hi, opt.GridPoints, opt.Tol)
	}
	h := func(x float64) float64 { //lint:allow allocfree non-escaping closure: maximizeGrid only calls it, so it stays on the stack (the allocs_per_op gate pins this)
		rr[i] = x
		return u.Value(x, a.CongestionOf(rr, i))
	}
	return maximizeGrid(h, opt.Lo, opt.Hi, opt.GridPoints, opt.Tol)
}

// maximizeGrid is a local copy of the robust grid+golden maximizer to keep
// this package's hot path allocation-free.
func maximizeGrid(f func(float64) float64, a, b float64, n int, tol float64) (float64, float64) {
	h := (b - a) / float64(n)
	bestI, bestF := 0, math.Inf(-1)
	for i := 0; i <= n; i++ {
		if v := f(a + float64(i)*h); v > bestF {
			bestF, bestI = v, i
		}
	}
	lo := a + float64(bestI-1)*h
	if bestI == 0 {
		lo = a
	}
	hi := a + float64(bestI+1)*h
	if bestI == n {
		hi = b
	}
	const invPhi = 0.6180339887498949
	c := hi - invPhi*(hi-lo)
	d := lo + invPhi*(hi-lo)
	fc, fd := f(c), f(d)
	for hi-lo > tol {
		if fc > fd {
			hi, d, fd = d, c, fc
			c = hi - invPhi*(hi-lo)
			fc = f(c)
		} else {
			lo, c, fc = c, d, fd
			d = lo + invPhi*(hi-lo)
			fd = f(d)
		}
	}
	x := lo + (hi-lo)/2
	return x, f(x)
}

// BestResponseNewton computes user i's best response by running Newton's
// method on the first-derivative condition E_i(x) = M_i + ∂C_i/∂r_i = 0 in
// the user's own coordinate, falling back to the grid search when Newton
// fails to bracket an interior optimum (corner solutions, non-concave
// payoffs, or iterates leaving the finite region).  For smooth concave
// payoffs it is several times cheaper than the grid+golden search — the
// DESIGN.md §6 solver ablation.
func BestResponseNewton(a core.Allocation, us core.Profile, r []core.Rate, i int, opt BROptions) (x, val float64) {
	return BestResponseNewtonWS(nil, a, us, r, i, opt)
}

// BestResponseNewtonWS is BestResponseNewton with solver-owned scratch;
// see BestResponseWS for the fast-path structure and the bit-identity
// argument.
func BestResponseNewtonWS(ws *Workspace, a core.Allocation, us core.Profile, r []core.Rate, i int, opt BROptions) (x, val float64) {
	opt = opt.withDefaults()
	if ws == nil {
		ws = NewWorkspace()
	}
	var fdc, payoffAt func(x float64) float64
	if _, ok := a.(alloc.FairShare); ok {
		br := &ws.fsbr
		br.Reset(r, i)
		fdc = func(x float64) float64 {
			c := br.CongestionOf(x)
			if math.IsInf(c, 1) {
				return math.Inf(-1) // way past the optimum
			}
			d1, _ := br.OwnDerivs(x)
			return core.MarginalRate(us[i], x, c) + d1
		}
		payoffAt = func(x float64) float64 {
			return us[i].Value(x, br.CongestionOf(x))
		}
	} else {
		rr := ws.rates(len(r))
		copy(rr, r)
		fdc = func(x float64) float64 {
			rr[i] = x
			c := alloc.CongestionOfInto(a, &ws.aws, ws.congestion(len(rr)), rr, i)
			if math.IsInf(c, 1) {
				return math.Inf(-1) // way past the optimum
			}
			d1, _ := alloc.OwnDerivsInto(a, &ws.aws, rr, i)
			return core.MarginalRate(us[i], x, c) + d1
		}
		payoffAt = func(x float64) float64 {
			rr[i] = x
			return us[i].Value(x, alloc.CongestionOfInto(a, &ws.aws, ws.congestion(len(rr)), rr, i))
		}
	}
	// Newton with numeric derivative, seeded at the current rate.
	x = core.Clamp(r[i], opt.Lo, opt.Hi)
	ok := false
	for iter := 0; iter < 40; iter++ {
		f := fdc(x)
		if math.IsInf(f, 0) || math.IsNaN(f) {
			break
		}
		if math.Abs(f) < 1e-11 {
			ok = true
			break
		}
		h := 1e-6 * (math.Abs(x) + 1e-3)
		fp, fm := fdc(x+h), fdc(x-h)
		if math.IsInf(fp, 0) || math.IsInf(fm, 0) {
			break
		}
		d := (fp - fm) / (2 * h)
		if d == 0 || math.IsNaN(d) { //lint:allow floateq division guard: any nonzero derivative is usable
			break
		}
		nx := core.Clamp(x-f/d, opt.Lo, opt.Hi)
		if math.Abs(nx-x) < 1e-13 {
			x = nx
			ok = true
			break
		}
		x = nx
	}
	if ok {
		val = payoffAt(x)
		// Guard against converging to a stationary point that is not the
		// maximum: accept only if a coarse grid finds nothing better.
		gx, gval := BestResponseWS(ws, a, us[i], r, i, BROptions{GridPoints: 16, Tol: 1e-6})
		if gval <= val+1e-9 {
			return x, val
		}
		return gx, gval
	}
	return BestResponseWS(ws, a, us[i], r, i, opt)
}

// DeviationGain returns how much user i could gain by unilaterally
// deviating from r: max_x U_i(x, C_i(r|x)) − U_i(r_i, C_i(r)).  A point is
// an (ε-)Nash equilibrium iff every user's gain is ≤ ε.
func DeviationGain(a core.Allocation, u core.Utility, r []core.Rate, i int, opt BROptions) float64 {
	return deviationGainWS(nil, a, u, r, i, opt)
}

// deviationGainWS is DeviationGain on solver-owned scratch, bit-identical
// through the same fast paths as BestResponseWS.
func deviationGainWS(ws *Workspace, a core.Allocation, u core.Utility, r []core.Rate, i int, opt BROptions) float64 {
	if ws == nil {
		ws = NewWorkspace()
	}
	_, best := BestResponseWS(ws, a, u, r, i, opt)
	return best - u.Value(r[i], alloc.CongestionOfInto(a, &ws.aws, ws.congestion(len(r)), r, i))
}

// NashResidual returns the vector E with E_i = M_i(r_i, C_i(r)) + ∂C_i/∂r_i,
// the paper's measure of distance from the Nash first-derivative condition.
// All components vanish at an interior Nash equilibrium.
func NashResidual(a core.Allocation, us core.Profile, r []core.Rate) []float64 {
	c := a.Congestion(r)
	out := make([]float64, len(r))
	for i := range r {
		d1, _ := alloc.OwnDerivs(a, r, i)
		out[i] = core.MarginalRate(us[i], r[i], c[i]) + d1
	}
	return out
}
