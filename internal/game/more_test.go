package game

import (
	"math"
	"math/rand"
	"testing"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/mm1"
	"greednet/internal/utility"
)

func TestProtectionSlackDefinition(t *testing.T) {
	r := []float64{0.1, 0.3}
	slacks := ProtectionSlack(alloc.FairShare{}, r)
	c := alloc.FairShare{}.Congestion(r)
	for i := range r {
		want := mm1.ProtectionBound(2, r[i]) - c[i]
		if math.Abs(slacks[i]-want) > 1e-12 {
			t.Errorf("slack[%d] = %v, want %v", i, slacks[i], want)
		}
		if slacks[i] < 0 {
			t.Errorf("FS slack must be nonnegative: %v", slacks)
		}
	}
}

func TestEnvyMatrixDiagonalZero(t *testing.T) {
	us := utility.Identical(utility.NewLinear(1, 0.3), 3)
	p := core.Point{R: []float64{0.1, 0.2, 0.3}, C: []float64{0.2, 0.4, 0.9}}
	m := EnvyMatrix(us, p)
	for i := range m {
		if m[i][i] != 0 {
			t.Errorf("diagonal envy must be zero: %v", m[i][i])
		}
	}
	// With identical utilities, mutual envy entries are antisymmetric in
	// preference: if i envies j's bundle then j does not envy i's.
	for i := range m {
		for j := range m {
			if i != j && m[i][j] > 1e-12 && m[j][i] > 1e-12 {
				t.Errorf("both %d and %d envy each other under identical utilities", i, j)
			}
		}
	}
}

func TestStackelbergLeaderNeverWorseThanNash(t *testing.T) {
	// Definition 5: the leader's Stackelberg utility is ≥ her Nash utility
	// for every MAC allocation.
	rng := rand.New(rand.NewSource(96))
	for trial := 0; trial < 6; trial++ {
		us := core.Profile{
			utility.NewLinear(1, 0.15+0.2*rng.Float64()),
			utility.NewLinear(1, 0.15+0.2*rng.Float64()),
		}
		for _, a := range []core.Allocation{alloc.FairShare{}, alloc.Proportional{}, alloc.Blend{Theta: 0.5}} {
			adv, st, nash, err := LeaderAdvantage(a, us, 0, []float64{0.1, 0.1}, StackOptions{Grid: 24})
			if err != nil || !st.FollowersConverged || !nash.Converged {
				t.Fatalf("trial %d %s: solve failed", trial, a.Name())
			}
			if adv < -1e-5 {
				t.Errorf("trial %d %s: leader WORSE off leading (adv %v)", trial, a.Name(), adv)
			}
		}
	}
}

func TestMultiStartRejectsNonConverged(t *testing.T) {
	// Starts given to MultiStartNash that fail to converge must be
	// excluded from `all`, not silently counted.
	us := utility.Identical(utility.NewLinear(1, 0.25), 2)
	starts := [][]float64{{0.1, 0.1}, {0.2, 0.2}}
	opt := NashOptions{MaxIter: 1} // too few rounds to converge from far away
	res := MultiStartNash(alloc.FairShare{}, us, [][]float64{{0.45, 0.45}}, opt, 1e-6)
	if len(res.All) != 0 {
		t.Errorf("non-converged starts should be dropped, got %d", len(res.All))
	}
	if res.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1 (the drop must be counted, not silent)", res.Dropped)
	}
	res = MultiStartNash(alloc.FairShare{}, us, starts, NashOptions{}, 1e-6)
	if len(res.All) != 2 {
		t.Errorf("expected 2 converged runs, got %d", len(res.All))
	}
	if res.Dropped != 0 {
		t.Errorf("Dropped = %d, want 0 on an all-converged set", res.Dropped)
	}
}

func TestFindDominatingNilAtParetoPoint(t *testing.T) {
	// The symmetric Pareto point should admit no dominating witness.
	u := utility.NewLinear(1, 0.25)
	n := 3
	rp, cp, ok := SymmetricParetoRate(u, n)
	if !ok {
		t.Fatal("no Pareto rate")
	}
	p := core.Point{R: []float64{rp, rp, rp}, C: []float64{cp, cp, cp}}
	us := utility.Identical(u, n)
	if w := FindDominating(us, p, rand.New(rand.NewSource(97)), 3000); w != nil {
		t.Errorf("found a 'dominating' point over a Pareto optimum: %+v", w)
	}
}

func TestNashResidualSigns(t *testing.T) {
	// E_i = M_i + ∂C_i/∂r_i relates to the payoff slope via
	// dU/dr = U_c·E with U_c < 0, so E is NEGATIVE below the equilibrium
	// (utility still rising) and POSITIVE above it.
	us := utility.Identical(utility.NewLinear(1, 0.25), 2)
	star := (1 - math.Sqrt(0.25)) / 2
	below := NashResidual(alloc.FairShare{}, us, []float64{star * 0.8, star * 0.8})
	above := NashResidual(alloc.FairShare{}, us, []float64{star * 1.2, star * 1.2})
	if below[0] >= 0 || above[0] <= 0 {
		t.Errorf("residual signs wrong: below %v, above %v", below[0], above[0])
	}
}
