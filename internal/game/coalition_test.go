package game

import (
	"math/rand"
	"testing"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/utility"
)

func TestFIFONashAdmitsCoalitionDeviation(t *testing.T) {
	// The grand coalition throttling back improves everyone at the FIFO
	// Nash equilibrium (overgrazing).
	n := 3
	us := utility.Identical(utility.NewLinear(1, 0.2), n)
	res, err := SolveNash(alloc.Proportional{}, us, []float64{0.1, 0.1, 0.1}, NashOptions{})
	if err != nil || !res.Converged {
		t.Fatal("solve failed")
	}
	rng := rand.New(rand.NewSource(80))
	w := FindCoalitionDeviation(alloc.Proportional{}, us, res.R, []int{0, 1, 2}, rng, 2000)
	if w == nil {
		t.Fatal("expected a grand-coalition improvement at FIFO Nash")
	}
	for k, g := range w.Gains {
		if g <= 0 {
			t.Errorf("member %d gain %v should be positive", w.Members[k], g)
		}
	}
	// The improvement should come from throttling (lower total rate).
	sumBefore, sumAfter := 0.0, 0.0
	for i := range res.R {
		sumBefore += res.R[i]
		sumAfter += w.Rates[i]
	}
	if sumAfter >= sumBefore {
		t.Errorf("expected throttling: %v → %v", sumBefore, sumAfter)
	}
}

func TestFairShareNashResistsCoalitions(t *testing.T) {
	// Footnote 14: Fair Share Nash equilibria are resilient against
	// coalitional manipulation (strong equilibria).
	profiles := []core.Profile{
		utility.Identical(utility.NewLinear(1, 0.25), 3),
		{
			utility.NewLinear(1, 0.2),
			utility.Log{W: 0.3, Gamma: 1},
			utility.Sqrt{W: 1, Gamma: 2},
		},
	}
	for pi, us := range profiles {
		start := make([]float64, len(us))
		for i := range start {
			start[i] = 0.1
		}
		res, err := SolveNash(alloc.FairShare{}, us, start, NashOptions{})
		if err != nil || !res.Converged {
			t.Fatalf("profile %d: solve failed", pi)
		}
		rng := rand.New(rand.NewSource(int64(81 + pi)))
		if w := StrongEquilibriumCheck(alloc.FairShare{}, us, res.R, rng, 800); w != nil {
			t.Errorf("profile %d: coalition %v improves at FS Nash by %v (rates %v)",
				pi, w.Members, w.Gains, w.Rates)
		}
	}
}

func TestSingletonCoalitionMatchesNashness(t *testing.T) {
	// A singleton coalition deviation is just a unilateral deviation, so
	// none should exist at any Nash equilibrium, FIFO included.
	us := utility.Identical(utility.NewLinear(1, 0.25), 2)
	res, err := SolveNash(alloc.Proportional{}, us, []float64{0.1, 0.1}, NashOptions{})
	if err != nil || !res.Converged {
		t.Fatal("solve failed")
	}
	rng := rand.New(rand.NewSource(82))
	for i := 0; i < 2; i++ {
		if w := FindCoalitionDeviation(alloc.Proportional{}, us, res.R, []int{i}, rng, 2000); w != nil {
			t.Errorf("unilateral improvement at Nash for user %d: %+v", i, w)
		}
	}
}
