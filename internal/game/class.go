package game

import (
	"errors"
	"fmt"
	"math"

	"greednet/internal/core"
	"greednet/internal/profkey"
)

// Class is one utility class of a class-aggregated game: Count users who
// share the same utility and the same (bit-exact) rate.  The paper's
// equilibria depend only on the profile of utilities and rates, never on
// user identity, so a game with K distinct classes (K ≪ N) can be
// represented — and solved — over (class, multiplicity) pairs.
type Class struct {
	// U is the shared utility of every member.
	U core.Utility
	// Rate is the per-member rate (a starting rate before a solve, an
	// equilibrium rate after).
	Rate core.Rate
	// Count is the multiplicity, ≥ 1.
	Count int
}

// ClassGame is a game of K utility classes in canonical order (ascending
// by utility spec, then by rate — the profkey class order).  Build one
// with NewClassGame or Aggregate; the canonical ordering is what makes a
// ClassGame's Key a cache key and its Expand deterministic.
type ClassGame struct {
	// Classes is the canonical class list.
	Classes []Class
}

// ErrBadClass reports an invalid class specification.
var ErrBadClass = errors.New("game: class needs Count ≥ 1, a finite positive Rate, and a utility")

// UtilitySpec renders a utility as the deterministic string used for
// class identity and canonical ordering.  Every in-tree family
// implements fmt.Stringer; anything else falls back to its Go type and
// field rendering, which is deterministic for struct utilities.
func UtilitySpec(u core.Utility) string {
	if s, ok := u.(fmt.Stringer); ok {
		return s.String()
	}
	return fmt.Sprintf("%T%+v", u, u)
}

// NewClassGame validates, canonicalizes (sorts by (spec, rate)) and
// merges duplicate (spec, rate) classes.  Rates compare bit-exactly, so
// merging never changes the represented game.
func NewClassGame(classes []Class) (ClassGame, error) {
	for _, c := range classes {
		if c.Count < 1 || c.U == nil || !(c.Rate > 0) || math.IsInf(c.Rate, 1) {
			return ClassGame{}, ErrBadClass
		}
	}
	specs := make([]string, len(classes))
	rates := make([]float64, len(classes))
	for i, c := range classes {
		specs[i] = UtilitySpec(c.U)
		rates[i] = c.Rate
	}
	// profkey.Coalesce gives the canonical (spec, rate) order; rebuild
	// the class list along it, summing multiplicities of merged classes.
	type slot struct {
		spec string
		rate float64
	}
	byKey := make(map[slot]*Class)
	for i, c := range classes {
		k := slot{specs[i], rates[i]}
		if got, ok := byKey[k]; ok {
			got.Count += c.Count
			continue
		}
		cc := c
		byKey[k] = &cc
	}
	entries := profkey.Coalesce(specs, rates)
	out := make([]Class, 0, len(entries))
	seen := make(map[slot]bool)
	for _, e := range entries {
		k := slot{e.Spec, e.RateVal}
		if seen[k] {
			continue // Coalesce already merged multiplicities; we track our own
		}
		seen[k] = true
		out = append(out, *byKey[k])
	}
	return ClassGame{Classes: out}, nil
}

// N returns the total user count Σ Count.
func (cg ClassGame) N() int {
	n := 0
	for _, c := range cg.Classes {
		n += c.Count
	}
	return n
}

// K returns the class count.
func (cg ClassGame) K() int { return len(cg.Classes) }

// Rates returns the per-class rate vector (freshly allocated).
func (cg ClassGame) Rates() []core.Rate {
	out := make([]core.Rate, len(cg.Classes))
	for i, c := range cg.Classes {
		out[i] = c.Rate
	}
	return out
}

// Key renders the canonical profile key of the game (profkey class
// form): two games share a key iff they expand to the same multiset of
// (utility spec, bit-exact rate) users.
func (cg ClassGame) Key() string {
	entries := make([]profkey.ClassEntry, len(cg.Classes))
	for i, c := range cg.Classes {
		entries[i] = profkey.ClassEntry{Spec: UtilitySpec(c.U), RateVal: c.Rate, Count: c.Count}
	}
	return profkey.Classes(entries)
}

// Aggregate coalesces a per-user game into its class representation.
// Users belong to the same class iff their utilities render to the same
// spec AND their rates are bit-equal — an ulp of rate difference is a
// different class, so aggregation is lossless: Expand(Aggregate(us, r))
// reproduces every rate bit for bit (in canonical order).  classOf maps
// each original user index to its class index in the returned game.
func Aggregate(us core.Profile, r []core.Rate) (cg ClassGame, classOf []int, err error) {
	if len(us) != len(r) {
		return ClassGame{}, nil, ErrNoProfile
	}
	classes := make([]Class, len(us))
	for i := range us {
		if us[i] == nil || !(r[i] > 0) || math.IsInf(r[i], 1) {
			return ClassGame{}, nil, ErrBadClass
		}
		classes[i] = Class{U: us[i], Rate: r[i], Count: 1}
	}
	cg, err = NewClassGame(classes)
	if err != nil {
		return ClassGame{}, nil, err
	}
	classOf = make([]int, len(us))
	for i := range us {
		spec := UtilitySpec(us[i])
		classOf[i] = -1
		for j, c := range cg.Classes {
			if profkey.Rate(c.Rate) == profkey.Rate(r[i]) && UtilitySpec(c.U) == spec {
				classOf[i] = j
				break
			}
		}
		if classOf[i] < 0 {
			return ClassGame{}, nil, fmt.Errorf("game: aggregate lost user %d", i)
		}
	}
	return cg, classOf, nil
}

// Expand materializes the per-user game in canonical member-major order:
// class 0's Count users first, then class 1's, and so on.  Rates are
// copied bit-exactly, so Aggregate(Expand(cg)) == cg (same canonical
// classes, same bits) — the symmetry-expansion bridge the differential
// tests lean on.
func (cg ClassGame) Expand() (core.Profile, []core.Rate) {
	n := cg.N()
	us := make(core.Profile, 0, n)
	r := make([]core.Rate, 0, n)
	for _, c := range cg.Classes {
		for m := 0; m < c.Count; m++ {
			us = append(us, c.U)
			r = append(r, c.Rate)
		}
	}
	return us, r
}

// ExpandVec writes v's per-class values out to per-user positions in
// canonical member-major order (class j's value repeated Count_j times).
// dst must have cg.N() elements; it is returned for chaining.
func (cg ClassGame) ExpandVec(dst []float64, v []float64) []float64 {
	k := 0
	for j, c := range cg.Classes {
		for m := 0; m < c.Count; m++ {
			dst[k] = v[j]
			k++
		}
	}
	_ = k
	return dst
}

// memberStart returns the canonical expansion index of class j's first
// member.
func (cg ClassGame) memberStart(j int) int {
	s := 0
	for l := 0; l < j; l++ {
		s += cg.Classes[l].Count
	}
	return s
}
