package game

import (
	"math"

	"greednet/internal/core"
)

// EnvyMatrix returns E with E[i][j] = U_i(r_j, c_j) − U_i(r_i, c_i): how
// much user i prefers user j's allocation to her own, measured with user
// i's own preferences (Definition in §4.1.2 — envy never compares two
// different users' utility scales).
func EnvyMatrix(us core.Profile, p core.Point) [][]float64 {
	n := len(p.R)
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		out[i] = make([]float64, n)
		own := us[i].Value(p.R[i], p.C[i])
		for j := 0; j < n; j++ {
			out[i][j] = us[i].Value(p.R[j], p.C[j]) - own
		}
	}
	return out
}

// MaxEnvy returns the largest positive entry of the envy matrix and the
// (envier, envied) pair attaining it.  Zero (with indices −1) means the
// allocation is envy-free.
func MaxEnvy(us core.Profile, p core.Point) (amount float64, envier, envied int) {
	envier, envied = -1, -1
	m := EnvyMatrix(us, p)
	for i := range m {
		for j := range m[i] {
			if i != j && m[i][j] > amount {
				amount, envier, envied = m[i][j], i, j
			}
		}
	}
	return amount, envier, envied
}

// IsEnvyFree reports whether no user envies another within tol.
func IsEnvyFree(us core.Profile, p core.Point, tol float64) bool {
	amount, _, _ := MaxEnvy(us, p)
	return amount <= tol
}

// UnilateralEnvy measures the paper's unilaterally-envy-free condition
// (Definition 4) for user i: it replaces r_i with user i's best response to
// the other components of r, then returns the maximum envy user i feels at
// the resulting point.  A discipline is unilaterally envy-free iff this is
// ≤ 0 for every i, every r, and every admissible utility; Fair Share
// guarantees it (Theorem 3).
func UnilateralEnvy(a core.Allocation, us core.Profile, r []core.Rate, i int, opt BROptions) float64 {
	br, _ := BestResponse(a, us[i], r, i, opt)
	rr := core.WithRate(r, i, br)
	p := core.At(a, rr)
	own := us[i].Value(p.R[i], p.C[i])
	worst := math.Inf(-1)
	for j := range rr {
		if j == i {
			continue
		}
		if v := us[i].Value(p.R[j], p.C[j]) - own; v > worst {
			worst = v
		}
	}
	return worst
}
