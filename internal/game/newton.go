package game

import (
	"context"
	"errors"
	"math"

	"greednet/internal/core"
	"greednet/internal/numeric"
)

// SolveNashNewton finds a Nash equilibrium by applying the multivariate
// Newton method to the first-derivative-condition system E(r) = 0 (with
// E_i = M_i + ∂C_i/∂r_i), solving the linearized system with the full
// finite-difference Jacobian at each step.  It converges quadratically
// from good starts but, unlike best-response iteration, offers no global
// guarantees — it exists as the DESIGN.md ablation partner of SolveNash
// and as a fast polisher for near-equilibrium starts.
//
// The returned point satisfies ‖E‖∞ ≤ ftol; callers should confirm
// Nash-ness with DeviationGain if the start was far from equilibrium
// (an FDC zero can be a corner or saddle for non-concave payoffs).
func SolveNashNewton(a core.Allocation, us core.Profile, r0 []core.Rate, maxIter int, ftol float64) (NashResult, error) {
	return SolveNashNewtonCtx(context.Background(), a, us, r0, maxIter, ftol)
}

// SolveNashNewtonCtx is SolveNashNewton under a context, polled once per
// Newton step (each step builds an n×n finite-difference Jacobian, so the
// poll is amortized to nothing).  On cancellation it returns the last
// iterate's rates with the typed core.ErrCanceled / core.ErrDeadline —
// distinct from "ran out of iterations", which stays a domain error.
func SolveNashNewtonCtx(ctx context.Context, a core.Allocation, us core.Profile, r0 []core.Rate, maxIter int, ftol float64) (NashResult, error) {
	n := len(r0)
	if len(us) != n {
		return NashResult{}, ErrNoProfile
	}
	if maxIter <= 0 {
		maxIter = 50
	}
	if ftol <= 0 {
		ftol = 1e-10
	}
	r := append([]float64(nil), r0...)
	field := ResidualField(a, us)
	var res NashResult
	for iter := 1; iter <= maxIter; iter++ {
		if err := core.CtxErr(ctx); err != nil {
			// Abandoned mid-solve: the rates are real partial progress; C
			// stays nil (the point was never accepted, so no congestion
			// report is owed for it).
			return NashResult{R: r, Iters: iter - 1}, err
		}
		e := field(r)
		if !core.IsFiniteVec(e) {
			return res, errors.New("game: Newton residual left the finite region")
		}
		if numeric.VecNormInf(e) <= ftol {
			res = NashResult{R: r, C: a.Congestion(r), Converged: true, Iters: iter} //lint:allow feasguard reports C(r) at the converged point; the Allocation contract defines it on all of R+^n
			for i := 0; i < n; i++ {
				if g := DeviationGain(a, us[i], r, i, BROptions{}); g > res.MaxGain {
					res.MaxGain = g
				}
			}
			return res, nil
		}
		jac := numeric.JacobianFD(field, r, 0)
		step, err := numeric.Solve(jac, e)
		if err != nil {
			return res, err
		}
		// Damped update with a feasibility guard: keep every rate strictly
		// positive and the iterate finite.
		lambda := 1.0
		for attempt := 0; attempt < 30; attempt++ {
			ok := true
			for i := 0; i < n; i++ {
				v := r[i] - lambda*step[i]
				if v <= 1e-9 || v >= 1-1e-9 || math.IsNaN(v) {
					ok = false
					break
				}
			}
			if ok {
				break
			}
			lambda /= 2
		}
		for i := 0; i < n; i++ {
			r[i] = core.Clamp(r[i]-lambda*step[i], 1e-9, 1-1e-9)
		}
	}
	res = NashResult{R: r, C: a.Congestion(r), Converged: false, Iters: maxIter} //lint:allow feasguard failure-path report of C(r) at the last iterate; contract covers out-of-domain
	return res, errors.New("game: Newton did not reach the FDC tolerance")
}
