package game

import (
	"context"
	"math"
	"testing"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/utility"
)

func classDisciplines() []core.Allocation {
	return []core.Allocation{alloc.FairShare{}, alloc.Proportional{}, alloc.Square{}}
}

func TestAggregateExpandRoundTrip(t *testing.T) {
	us := core.Profile{
		utility.NewLinear(1, 0.4),
		utility.Log{W: 0.3, Gamma: 1},
		utility.NewLinear(1, 0.4),
		utility.NewLinear(1, 0.2),
		utility.Log{W: 0.3, Gamma: 1},
	}
	r := []core.Rate{0.05, 0.1, 0.05, 0.07, 0.1}
	cg, classOf, err := Aggregate(us, r)
	if err != nil {
		t.Fatal(err)
	}
	if cg.K() != 3 || cg.N() != 5 {
		t.Fatalf("got K=%d N=%d, want 3, 5", cg.K(), cg.N())
	}
	for i := range us {
		c := cg.Classes[classOf[i]]
		if math.Float64bits(c.Rate) != math.Float64bits(r[i]) || UtilitySpec(c.U) != UtilitySpec(us[i]) {
			t.Fatalf("classOf[%d] maps to %+v, user has rate %v spec %s", i, c, r[i], UtilitySpec(us[i]))
		}
	}
	xus, xr := cg.Expand()
	cg2, _, err := Aggregate(xus, xr)
	if err != nil {
		t.Fatal(err)
	}
	if cg2.Key() != cg.Key() {
		t.Fatalf("Aggregate(Expand) key drifted:\n %q\n %q", cg2.Key(), cg.Key())
	}
	for j := range cg.Classes {
		a, b := cg.Classes[j], cg2.Classes[j]
		if a.Count != b.Count || math.Float64bits(a.Rate) != math.Float64bits(b.Rate) || UtilitySpec(a.U) != UtilitySpec(b.U) {
			t.Fatalf("class %d not reproduced: %+v vs %+v", j, a, b)
		}
	}
}

func TestExpandVec(t *testing.T) {
	cg, err := NewClassGame([]Class{
		{U: utility.NewLinear(1, 0.3), Rate: 0.1, Count: 3},
		{U: utility.NewLinear(1, 0.5), Rate: 0.2, Count: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, cg.N())
	cg.ExpandVec(dst, []float64{7, 9})
	want := []float64{7, 7, 7, 9, 9}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("ExpandVec = %v, want %v", dst, want)
		}
	}
}

// bitEqualSolve asserts the class result matches the exact per-user result
// Float64bits-for-Float64bits at each class's first expanded member.
func bitEqualSolve(t *testing.T, name string, cg ClassGame, cres ClassNashResult, xres NashResult) {
	t.Helper()
	if cres.Converged != xres.Converged || cres.Iters != xres.Iters {
		t.Fatalf("%s: converged/iters (%v, %d) vs exact (%v, %d)",
			name, cres.Converged, cres.Iters, xres.Converged, xres.Iters)
	}
	pos := 0
	for j, c := range cg.Classes {
		if math.Float64bits(cres.R[j]) != math.Float64bits(xres.R[pos]) {
			t.Errorf("%s: class %d rate %x != exact %x", name, j, cres.R[j], xres.R[pos])
		}
		if math.Float64bits(cres.C[j]) != math.Float64bits(xres.C[pos]) {
			t.Errorf("%s: class %d congestion %x != exact %x", name, j, cres.C[j], xres.C[pos])
		}
		pos += c.Count
	}
}

// TestSolveNashClassFastBitEqualKN pins the by-construction claim: with
// every user its own class (K = N), the fast class arithmetic degenerates
// to the exact per-user expression sequence, so SolveNashClassWS is
// Float64bits-equal to SolveNashWS on the expanded profile — rates,
// congestions, iteration counts, and the deviation audit — under both
// update schemes, across the aggregated-discipline matrix.
func TestSolveNashClassFastBitEqualKN(t *testing.T) {
	ctx := context.Background()
	for _, n := range []int{3, 8, 64} {
		classes := make([]Class, n)
		for j := 0; j < n; j++ {
			classes[j] = Class{
				U:     utility.NewLinear(1, 0.2+0.01*float64(j)),
				Rate:  0.4 / float64(n),
				Count: 1,
			}
		}
		cg, err := NewClassGame(classes)
		if err != nil {
			t.Fatal(err)
		}
		if cg.K() != n {
			t.Fatalf("fixture coalesced: K=%d, want %d", cg.K(), n)
		}
		xus, xr := cg.Expand()
		for _, a := range classDisciplines() {
			for _, scheme := range []UpdateScheme{GaussSeidel, Jacobi} {
				opt := NashOptions{Scheme: scheme, MaxIter: 80}
				xres, err := SolveNashWS(ctx, nil, a, xus, xr, opt)
				if err != nil {
					t.Fatal(err)
				}
				cres, err := SolveNashClassWS(ctx, nil, a, cg, nil, ClassNashOptions{NashOptions: opt})
				if err != nil {
					t.Fatal(err)
				}
				name := a.Name() + "/KN"
				if scheme == Jacobi {
					name += "/jacobi"
				}
				bitEqualSolve(t, name, cg, cres, xres)
				if math.Float64bits(cres.MaxGain) != math.Float64bits(xres.MaxGain) {
					t.Errorf("%s: MaxGain %x != exact %x", name, cres.MaxGain, xres.MaxGain)
				}
			}
		}
	}
}

// TestSolveNashClassMirrorBitEqualK1 pins the mirror-expanded mode: with
// all users in one class (K = 1), ClassMirror delegates to the per-user
// machinery on the expansion and is Float64bits-equal to SolveNashWS —
// including at N = 256, where fl's position-dependent rounding makes
// same-class members drift by ulps and pure class arithmetic could not
// reproduce the exact bits.
func TestSolveNashClassMirrorBitEqualK1(t *testing.T) {
	ctx := context.Background()
	for _, n := range []int{4, 64, 256} {
		cg, err := NewClassGame([]Class{
			{U: utility.NewLinear(1, 0.4), Rate: 0.3 / float64(n), Count: n},
		})
		if err != nil {
			t.Fatal(err)
		}
		xus, xr := cg.Expand()
		for _, a := range classDisciplines() {
			for _, scheme := range []UpdateScheme{GaussSeidel, Jacobi} {
				maxIter := 80
				if n == 256 {
					maxIter = 25 // both sides share the cap; equality is per-iterate
				}
				opt := NashOptions{Scheme: scheme, MaxIter: maxIter}
				xres, err := SolveNashWS(ctx, nil, a, xus, xr, opt)
				if err != nil {
					t.Fatal(err)
				}
				cres, err := SolveNashClassWS(ctx, nil, a, cg, nil,
					ClassNashOptions{NashOptions: opt, Summation: ClassMirror})
				if err != nil {
					t.Fatal(err)
				}
				name := a.Name() + "/K1/mirror"
				bitEqualSolve(t, name, cg, cres, xres)
				if math.Float64bits(cres.MaxGain) != math.Float64bits(xres.MaxGain) {
					t.Errorf("%s: MaxGain %x != exact %x", name, cres.MaxGain, xres.MaxGain)
				}
			}
		}
	}
}

// TestSolveNashClassFastNearExactMultiplicities checks the fast contract
// at real multiplicities: the collapsed within-class chain steps only
// perturb sums at rounding level, so the fast equilibrium must sit within
// solver tolerance of the exact equilibrium of the expansion.
func TestSolveNashClassFastNearExactMultiplicities(t *testing.T) {
	ctx := context.Background()
	cg, err := NewClassGame([]Class{
		{U: utility.NewLinear(1, 0.3), Rate: 0.01, Count: 12},
		{U: utility.NewLinear(1, 0.6), Rate: 0.02, Count: 7},
		{U: utility.Log{W: 0.3, Gamma: 1}, Rate: 0.005, Count: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	xus, xr := cg.Expand()
	a := alloc.FairShare{}
	xres, err := SolveNashWS(ctx, nil, a, xus, xr, NashOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cres, err := SolveNashClassWS(ctx, nil, a, cg, nil, ClassNashOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !cres.Converged || !xres.Converged {
		t.Fatalf("converged: class %v exact %v", cres.Converged, xres.Converged)
	}
	pos := 0
	for j, c := range cg.Classes {
		if d := math.Abs(cres.R[j] - xres.R[pos]); d > 1e-6 {
			t.Errorf("class %d rate off by %g: %v vs exact %v", j, d, cres.R[j], xres.R[pos])
		}
		pos += c.Count
	}
	if cres.MaxGain > 1e-4 {
		t.Errorf("fast equilibrium leaves deviation gain %g", cres.MaxGain)
	}
}

// TestSolveNashClassLargeMultiplicityStable is a regression test for the
// whole-class overshoot divergence: when one class vacates capacity, the
// unrestricted single-deviator best response rationally jumps far above
// the pack, and a large class following en masse floods the network —
// the solver then "converged" on a golden-section artifact near the grid
// step 1/GridPoints.  With the multiplicity clamp in classBestResponseWS
// the active class must instead land on the analytic symmetric point:
// the top member's FOC is γ·g'(X) = 1, so total load X = 1 − √γ — for
// γ = 1/2 that is X = 1 − 1/√2, carried by the n/2 active users.
func TestSolveNashClassLargeMultiplicityStable(t *testing.T) {
	ctx := context.Background()
	n := 1 << 14
	cg, err := NewClassGame([]Class{
		{U: utility.NewLinear(1, 0.5), Rate: 0.5 / float64(n), Count: n / 2},
		// γ > 1 makes γ·g' > 1 everywhere: this class exits to its Lo
		// corner, vacating the capacity that used to trigger the jump.
		{U: utility.NewLinear(1, 1.5), Rate: 0.5 / float64(n), Count: n / 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveNashClassWS(ctx, nil, alloc.FairShare{}, cg, nil,
		ClassNashOptions{NashOptions: NashOptions{Tol: 1e-9}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("class solve did not converge")
	}
	// Total load at the FOC point: X = 1 − 1/√2, split over n/2 senders.
	want := (1 - 1/math.Sqrt2) / float64(n/2)
	if rel := math.Abs(res.R[0]-want) / want; rel > 1e-3 {
		t.Errorf("active class rate %g, want %g (rel %g)", res.R[0], want, rel)
	}
	if res.R[1] > 1e-6 {
		t.Errorf("exited class still sends %g", res.R[1])
	}
	// The old failure signature: both classes parked on the golden-section
	// artifact at ≈ 1/GridPoints.
	if math.Abs(res.R[0]-1.0/64) < 1e-3 {
		t.Errorf("active class rate %g sits on the 1/GridPoints artifact", res.R[0])
	}
}

// TestSolveNashClassFreeHoldsClasses mirrors the per-user Free contract:
// a pinned class holds its start rate while free classes equilibrate.
func TestSolveNashClassFreeHoldsClasses(t *testing.T) {
	cg, err := NewClassGame([]Class{
		{U: utility.NewLinear(1, 0.3), Rate: 0.02, Count: 4},
		{U: utility.NewLinear(1, 0.5), Rate: 0.03, Count: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := ClassNashOptions{NashOptions: NashOptions{Free: []bool{false, true}}}
	res, err := SolveNashClass(alloc.FairShare{}, cg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(res.R[0]) != math.Float64bits(0.02) {
		t.Fatalf("pinned class moved: %v", res.R[0])
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
}

// TestSolveNashClassCancel pins the ctx contract: cancellation mid-solve
// returns the typed error with the partial iterate, exactly like
// SolveNashWS.
func TestSolveNashClassCancel(t *testing.T) {
	cg, err := NewClassGame([]Class{
		{U: utility.NewLinear(1, 0.3), Rate: 0.001, Count: 500},
		{U: utility.NewLinear(1, 0.5), Rate: 0.0005, Count: 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cres, cerr := SolveNashClassWS(ctx, nil, alloc.FairShare{}, cg, nil, ClassNashOptions{})
	if cerr == nil {
		t.Fatal("expected cancellation error")
	}
	if cres.Iters != 0 || cres.Converged {
		t.Fatalf("canceled solve reported progress: %+v", cres)
	}
}

// TestSolveNashClassGenericDisciplineMirrors checks that disciplines
// without class-aggregated arithmetic (Blend) run mirror-expanded even
// when ClassFast is requested, matching SolveNashWS on the expansion.
func TestSolveNashClassGenericDisciplineMirrors(t *testing.T) {
	ctx := context.Background()
	cg, err := NewClassGame([]Class{
		{U: utility.NewLinear(1, 0.3), Rate: 0.02, Count: 3},
		{U: utility.NewLinear(1, 0.5), Rate: 0.03, Count: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	a := alloc.Blend{Theta: 0.5}
	xus, xr := cg.Expand()
	opt := NashOptions{MaxIter: 60}
	xres, err := SolveNashWS(ctx, nil, a, xus, xr, opt)
	if err != nil {
		t.Fatal(err)
	}
	cres, err := SolveNashClassWS(ctx, nil, a, cg, nil, ClassNashOptions{NashOptions: opt})
	if err != nil {
		t.Fatal(err)
	}
	bitEqualSolve(t, "blend/generic", cg, cres, xres)
}

// FuzzAggregateExpand is the satellite fuzz harness: for arbitrary class
// specs, Expand followed by Aggregate must reproduce the canonical class
// game bit for bit (same key, same classes, same multiplicities).
func FuzzAggregateExpand(f *testing.F) {
	f.Add(0.1, 0.2, 0.3, uint8(1), uint8(2), uint8(3))
	f.Add(0.05, 0.05, 0.9, uint8(4), uint8(1), uint8(1))
	f.Add(1e-9, 0.5, 0.999, uint8(9), uint8(9), uint8(9))
	f.Fuzz(func(t *testing.T, r1, r2, r3 float64, c1, c2, c3 uint8) {
		rates := []float64{r1, r2, r3}
		counts := []uint8{c1, c2, c3}
		gammas := []float64{0.3, 0.5, 0.3} // classes 0 and 2 share a utility
		var classes []Class
		for i := range rates {
			if !(rates[i] > 0) || rates[i] >= 1 || counts[i] == 0 || counts[i] > 16 {
				continue
			}
			classes = append(classes, Class{
				U:     utility.NewLinear(1, gammas[i]),
				Rate:  rates[i],
				Count: int(counts[i]),
			})
		}
		if len(classes) == 0 {
			return
		}
		cg, err := NewClassGame(classes)
		if err != nil {
			t.Fatal(err)
		}
		xus, xr := cg.Expand()
		if len(xr) != cg.N() {
			t.Fatalf("Expand produced %d users, want %d", len(xr), cg.N())
		}
		back, classOf, err := Aggregate(xus, xr)
		if err != nil {
			t.Fatal(err)
		}
		if back.Key() != cg.Key() {
			t.Fatalf("round-trip key drifted:\n %q\n %q", back.Key(), cg.Key())
		}
		if back.K() != cg.K() || back.N() != cg.N() {
			t.Fatalf("round trip: K %d→%d, N %d→%d", cg.K(), back.K(), cg.N(), back.N())
		}
		for j := range cg.Classes {
			a, b := cg.Classes[j], back.Classes[j]
			if a.Count != b.Count || math.Float64bits(a.Rate) != math.Float64bits(b.Rate) || UtilitySpec(a.U) != UtilitySpec(b.U) {
				t.Fatalf("class %d: %+v vs %+v", j, a, b)
			}
		}
		// classOf must point every expanded user at a bit-matching class.
		for i := range xr {
			c := back.Classes[classOf[i]]
			if math.Float64bits(c.Rate) != math.Float64bits(xr[i]) {
				t.Fatalf("user %d mapped to class with rate %x, has %x", i, c.Rate, xr[i])
			}
		}
	})
}
