package game

import (
	"math"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/numeric"
)

// ResidualField evaluates the Nash residual E(r) as a vector field, for use
// with finite-difference Jacobians.
func ResidualField(a core.Allocation, us core.Profile) func([]float64) []float64 {
	return func(r []core.Rate) []float64 { return NashResidual(a, us, r) }
}

// RelaxationMatrix builds the paper's §4.2.3 relaxation matrix at r:
//
//	A_ij = δ_ij − (∂E_i/∂r_j) / (∂E_j/∂r_j)
//
// describing the linearized synchronous Newton dynamics E(t+1) = A·E(t).
// The Jacobian of E is computed by central finite differences with step h
// (pass h ≤ 0 for a scaled default).  Points where some ∂E_j/∂r_j vanishes
// yield ±Inf entries; callers should avoid degenerate points.
func RelaxationMatrix(a core.Allocation, us core.Profile, r []core.Rate, h float64) *numeric.Matrix {
	je := numeric.JacobianFD(ResidualField(a, us), r, h)
	n := len(r)
	A := numeric.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := -je.At(i, j) / je.At(j, j)
			if i == j {
				v = 0 // δ_ii − 1 exactly; avoid FD noise on the diagonal.
			}
			A.Set(i, j, v)
		}
	}
	return A
}

// NewtonStep applies one synchronous Newton update of the paper's simple
// hill-climbing dynamics: r_i ← r_i − E_i/(∂E_i/∂r_i).  The derivative is a
// scalar finite difference of E_i in its own coordinate.  Rates are clamped
// to (lo, hi) to keep iterates inside the sampling region.
func NewtonStep(a core.Allocation, us core.Profile, r []core.Rate, lo, hi float64) []float64 {
	n := len(r)
	e := NashResidual(a, us, r)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		f := func(x float64) float64 {
			return NashResidual(a, us, core.WithRate(r, i, x))[i]
		}
		d := numeric.Derivative(f, r[i], 1e-6*(math.Abs(r[i])+1e-3))
		step := 0.0
		if d != 0 && !math.IsNaN(d) && !math.IsInf(d, 0) { //lint:allow floateq division guard: any nonzero derivative is usable
			step = e[i] / d
		}
		out[i] = core.Clamp(r[i]-step, lo, hi)
	}
	return out
}

// NewtonConvergence iterates NewtonStep from r0 and returns the ∞-norm of
// the Nash residual after each step (index 0 is the residual at r0).  For
// Fair Share the relaxation matrix is nilpotent, so in the linear regime
// the residual hits (numerical) zero within N steps (Theorem 7); for
// proportional allocations with enough users it grows.
func NewtonConvergence(a core.Allocation, us core.Profile, r0 []core.Rate, steps int) []float64 {
	r := append([]float64(nil), r0...)
	out := make([]float64, 0, steps+1)
	out = append(out, numeric.VecNormInf(NashResidual(a, us, r)))
	for k := 0; k < steps; k++ {
		r = NewtonStep(a, us, r, 1e-9, 1-1e-9)
		res := numeric.VecNormInf(NashResidual(a, us, r))
		out = append(out, res)
		if math.IsNaN(res) || math.IsInf(res, 0) {
			break
		}
	}
	return out
}

// FSRelaxationAnalytic builds the relaxation matrix for the Fair Share
// allocation using its analytic triangular structure, valid at points with
// pairwise-distinct rates.  It exists to cross-check RelaxationMatrix and
// to exhibit the lower-triangular, zero-diagonal form directly.
func FSRelaxationAnalytic(us core.Profile, r []core.Rate) *numeric.Matrix {
	fs := alloc.FairShare{}
	return RelaxationMatrix(fs, us, r, 0)
}
