package game

import (
	"math"
	"math/rand"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/mm1"
	"greednet/internal/numeric"
)

// ParetoResidual returns the per-user violation of the Pareto first-
// derivative condition M_i(r_i, c_i) − Z(r) at the point.  For an interior
// allocation, Pareto optimality requires every component to vanish
// (§4.1.1); a nonzero residual certifies inefficiency.
func ParetoResidual(us core.Profile, p core.Point) []float64 {
	z := mm1.Z(p.R)
	out := make([]float64, len(p.R))
	for i := range p.R {
		out[i] = core.MarginalRate(us[i], p.R[i], p.C[i]) - z
	}
	return out
}

// IsParetoFDC reports whether the Pareto first-derivative condition holds
// within tol at the point.  For the paper's convex feasible set, FDC plus
// convexity implies Pareto optimality, and FDC failure at an interior point
// implies the point is not Pareto optimal.
func IsParetoFDC(us core.Profile, p core.Point, tol float64) bool {
	for _, v := range ParetoResidual(us, p) {
		if math.Abs(v) > tol {
			return false
		}
	}
	return true
}

// SymmetricParetoRate solves for the common rate r at which the completely
// symmetric allocation (r, ..., r) with equal congestion split g(n·r)/n
// satisfies the Pareto FDC for n users sharing the same utility u:
//
//	M(r, g(n·r)/n) = −g'(n·r)
//
// It returns the rate, the per-user congestion, and whether a solution was
// found in (0, 1/n).
func SymmetricParetoRate(u core.Utility, n int) (r, c float64, ok bool) {
	fn := func(r float64) float64 {
		c := mm1.SymmetricCongestion(n, r)
		return core.MarginalRate(u, r, c) + mm1.GPrime(float64(n)*r) //lint:allow feasguard Brent bracket [1e-9, 1/n-1e-9] keeps n*r < 1 by construction
	}
	lo, hi := 1e-9, 1/float64(n)-1e-9
	flo, fhi := fn(lo), fn(hi)
	if math.IsNaN(flo) || math.IsNaN(fhi) || math.Signbit(flo) == math.Signbit(fhi) {
		return 0, 0, false
	}
	r, err := numeric.Brent(fn, lo, hi, 1e-13)
	if err != nil {
		return 0, 0, false
	}
	return r, mm1.SymmetricCongestion(n, r), true //lint:allow feasguard root returned by Brent lies inside the feasible bracket
}

// DominanceWitness is a feasible allocation that Pareto-dominates a probe
// point, produced by FindDominating.
type DominanceWitness struct {
	Point core.Point
	// Gains holds U_i(witness) − U_i(probe) per user; all ≥ 0 with at
	// least one > 0.
	Gains []float64
}

// FindDominating searches for a feasible allocation that Pareto-dominates
// the point p under profile us.  The search samples rate vectors near p
// (including uniform rescalings) and spans the congestion side of the
// feasible set with Fair-Share/proportional blends and HOL-priority
// allocations, which are all feasible by construction.  A non-nil result is
// a constructive certificate that p is not Pareto optimal; nil is
// inconclusive.
func FindDominating(us core.Profile, p core.Point, rng *rand.Rand, samples int) *DominanceWitness {
	n := len(p.R)
	u0 := p.UtilityValues(us)
	spanning := []core.Allocation{
		alloc.FairShare{},
		alloc.Proportional{},
		alloc.Blend{Theta: 0.5},
		alloc.HOLPriority{Order: alloc.SmallestFirst},
		alloc.HOLPriority{Order: alloc.LargestFirst},
	}
	try := func(r []core.Rate) *DominanceWitness {
		if !mm1.InDomain(r) {
			return nil
		}
		for _, a := range spanning {
			c := a.Congestion(r)
			if !core.IsFiniteVec(c) {
				continue
			}
			gains := make([]float64, n)
			better, strict := true, false
			for i := range r {
				gains[i] = us[i].Value(r[i], c[i]) - u0[i]
				if gains[i] < 0 {
					better = false
					break
				}
				if gains[i] > 1e-12 {
					strict = true
				}
			}
			if better && strict {
				return &DominanceWitness{
					Point: core.Point{R: append([]float64(nil), r...), C: c},
					Gains: gains,
				}
			}
		}
		return nil
	}
	r := make([]float64, n)
	for k := 0; k < samples; k++ {
		switch k % 3 {
		case 0: // Uniform rescaling of the whole vector.
			scale := 0.5 + rng.Float64()
			for i := range r {
				r[i] = p.R[i] * scale
			}
		case 1: // Independent per-user jitter.
			for i := range r {
				r[i] = p.R[i] * (0.7 + 0.6*rng.Float64())
			}
		default: // Pull toward the symmetric average.
			avg := mm1.Sum(p.R) / float64(n)
			t := rng.Float64()
			for i := range r {
				r[i] = (1-t)*p.R[i] + t*avg
			}
		}
		if w := try(r); w != nil {
			return w
		}
	}
	return nil
}
