package game

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/utility"
)

// legacyBestResponse is the pre-workspace implementation, copied verbatim:
// a fresh r|ⁱx vector per call and a full CongestionOf evaluation per
// probe.  It shares maximizeGrid and withDefaults with the live code, so
// any difference in results isolates the congestion fast paths.
func legacyBestResponse(a core.Allocation, u core.Utility, r []core.Rate, i int, opt BROptions) (x, val float64) {
	opt = opt.withDefaults()
	rr := append([]float64(nil), r...)
	h := func(x float64) float64 {
		rr[i] = x
		return u.Value(x, a.CongestionOf(rr, i))
	}
	return maximizeGrid(h, opt.Lo, opt.Hi, opt.GridPoints, opt.Tol)
}

// legacyBestResponseNewton is the pre-workspace Newton solver, copied
// verbatim (with its fallbacks routed to legacyBestResponse).
func legacyBestResponseNewton(a core.Allocation, us core.Profile, r []core.Rate, i int, opt BROptions) (x, val float64) {
	opt = opt.withDefaults()
	rr := append([]float64(nil), r...)
	fdc := func(x float64) float64 {
		rr[i] = x
		c := a.CongestionOf(rr, i)
		if math.IsInf(c, 1) {
			return math.Inf(-1)
		}
		d1, _ := alloc.OwnDerivs(a, rr, i)
		return core.MarginalRate(us[i], x, c) + d1
	}
	x = core.Clamp(r[i], opt.Lo, opt.Hi)
	ok := false
	for iter := 0; iter < 40; iter++ {
		f := fdc(x)
		if math.IsInf(f, 0) || math.IsNaN(f) {
			break
		}
		if math.Abs(f) < 1e-11 {
			ok = true
			break
		}
		h := 1e-6 * (math.Abs(x) + 1e-3)
		fp, fm := fdc(x+h), fdc(x-h)
		if math.IsInf(fp, 0) || math.IsInf(fm, 0) {
			break
		}
		d := (fp - fm) / (2 * h)
		if d == 0 || math.IsNaN(d) {
			break
		}
		nx := core.Clamp(x-f/d, opt.Lo, opt.Hi)
		if math.Abs(nx-x) < 1e-13 {
			x = nx
			ok = true
			break
		}
		x = nx
	}
	if ok {
		rr[i] = x
		val = us[i].Value(x, a.CongestionOf(rr, i))
		gx, gval := legacyBestResponse(a, us[i], r, i, BROptions{GridPoints: 16, Tol: 1e-6})
		if gval <= val+1e-9 {
			return x, val
		}
		return gx, gval
	}
	return legacyBestResponse(a, us[i], r, i, opt)
}

// opaque hides an allocation's fast-path interfaces, forcing the generic
// CongestionOf branch of BestResponseWS.
type opaque struct{ core.Allocation }

func fuzzProfileRates(rng *rand.Rand) ([]core.Rate, core.Profile) {
	n := 2 + rng.Intn(7)
	r := make([]core.Rate, n)
	us := make(core.Profile, n)
	for i := range r {
		if rng.Intn(4) == 0 {
			r[i] = float64(1+rng.Intn(3)) / 16 // exact ties
		} else {
			r[i] = (0.05 + 0.9*rng.Float64()) / float64(n)
		}
		us[i] = utility.NewLinear(0.5+rng.Float64(), 0.1+0.4*rng.Float64())
	}
	return r, us
}

// BestResponseWS (and through it BestResponse and the Nash solvers) must
// return bit-identical (x, val) to the pre-workspace implementation for
// every allocation family, including through a reused warm workspace.
func TestBestResponseWSBitIdenticalToLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ws := NewWorkspace()
	allocs := []core.Allocation{
		alloc.FairShare{},
		alloc.Proportional{},
		alloc.Blend{Theta: 0.6},
		alloc.Square{},
		opaque{alloc.FairShare{}}, // generic slow-path branch
	}
	for trial := 0; trial < 120; trial++ {
		r, us := fuzzProfileRates(rng)
		i := rng.Intn(len(r))
		for _, a := range allocs {
			wantX, wantV := legacyBestResponse(a, us[i], r, i, BROptions{})
			gotX, gotV := BestResponseWS(ws, a, us[i], r, i, BROptions{})
			if math.Float64bits(gotX) != math.Float64bits(wantX) ||
				math.Float64bits(gotV) != math.Float64bits(wantV) {
				t.Fatalf("%s r=%v i=%d: WS=(%v,%v) legacy=(%v,%v)",
					a.Name(), r, i, gotX, gotV, wantX, wantV)
			}
			nX, nV := legacyBestResponseNewton(a, us, r, i, BROptions{})
			gX, gV := BestResponseNewtonWS(ws, a, us, r, i, BROptions{})
			if math.Float64bits(gX) != math.Float64bits(nX) ||
				math.Float64bits(gV) != math.Float64bits(nV) {
				t.Fatalf("%s r=%v i=%d: NewtonWS=(%v,%v) legacy=(%v,%v)",
					a.Name(), r, i, gX, gV, nX, nV)
			}
		}
	}
}

// Workspace reuse across solves must not leak state between them: solving
// twice through one workspace gives the same bits as fresh workspaces,
// across schemes and allocations.
func TestSolveNashWSReuseIsStateless(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	shared := NewWorkspace()
	for trial := 0; trial < 20; trial++ {
		r0, us := fuzzProfileRates(rng)
		for _, scheme := range []UpdateScheme{GaussSeidel, Jacobi} {
			opt := NashOptions{Scheme: scheme, MaxIter: 40}
			want, err1 := SolveNashWS(context.Background(), NewWorkspace(), alloc.FairShare{}, us, r0, opt)
			got, err2 := SolveNashWS(context.Background(), shared, alloc.FairShare{}, us, r0, opt)
			if err1 != nil || err2 != nil {
				t.Fatalf("solve errors: %v / %v", err1, err2)
			}
			if got.Iters != want.Iters || got.Converged != want.Converged {
				t.Fatalf("shared-ws solve diverged: %+v vs %+v", got, want)
			}
			for i := range want.R {
				if math.Float64bits(got.R[i]) != math.Float64bits(want.R[i]) ||
					math.Float64bits(got.C[i]) != math.Float64bits(want.C[i]) {
					t.Fatalf("shared-ws solve differs at %d: R %v vs %v, C %v vs %v",
						i, got.R[i], want.R[i], got.C[i], want.C[i])
				}
			}
			if math.Float64bits(got.MaxGain) != math.Float64bits(want.MaxGain) {
				t.Fatalf("MaxGain differs: %v vs %v", got.MaxGain, want.MaxGain)
			}
		}
	}
}

// The returned R must be freshly allocated — a later solve through the
// same workspace must not mutate an earlier result.
func TestSolveNashWSResultsNotAliased(t *testing.T) {
	ws := NewWorkspace()
	us := core.Profile{utility.NewLinear(1, 0.25), utility.NewLinear(0.8, 0.3)}
	first, err := SolveNashWS(context.Background(), ws, alloc.FairShare{}, us, []core.Rate{0.1, 0.2}, NashOptions{MaxIter: 30})
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]float64(nil), first.R...)
	if _, err := SolveNashWS(context.Background(), ws, alloc.FairShare{}, us, []core.Rate{0.3, 0.05}, NashOptions{MaxIter: 30}); err != nil {
		t.Fatal(err)
	}
	for i := range snapshot {
		if math.Float64bits(first.R[i]) != math.Float64bits(snapshot[i]) {
			t.Fatalf("earlier result mutated by workspace reuse at %d", i)
		}
	}
}

// The warm best-response hot path must not allocate — the ≥5×-fewer-
// allocs acceptance criterion, pinned at its 0-alloc target.
func TestBestResponseWSZeroAllocs(t *testing.T) {
	r := []core.Rate{0.1, 0.2, 0.15, 0.05, 0.12, 0.08, 0.03, 0.07}
	// Box the utility into the interface once, outside the measured loop —
	// the solvers hold interfaces already; the conversion is test overhead.
	var u core.Utility = utility.NewLinear(1, 0.25)
	ws := NewWorkspace()
	BestResponseWS(ws, alloc.FairShare{}, u, r, 0, BROptions{}) // warm
	if got := testing.AllocsPerRun(100, func() {
		BestResponseWS(ws, alloc.FairShare{}, u, r, 0, BROptions{})
	}); got != 0 {
		t.Errorf("warm FairShare BestResponseWS allocs/op = %v, want 0", got)
	}
	BestResponseWS(ws, alloc.Proportional{}, u, r, 0, BROptions{})
	if got := testing.AllocsPerRun(100, func() {
		BestResponseWS(ws, alloc.Proportional{}, u, r, 0, BROptions{})
	}); got != 0 {
		t.Errorf("warm Proportional BestResponseWS allocs/op = %v, want 0", got)
	}
}

// NashTrajectory must report the same rate vectors as stepping SolveNash
// round by round (its historical definition).
func TestNashTrajectoryMatchesStepwiseSolves(t *testing.T) {
	us := core.Profile{utility.NewLinear(1, 0.25), utility.NewLinear(0.7, 0.4), utility.NewLinear(1.2, 0.2)}
	r0 := []core.Rate{0.3, 0.1, 0.05}
	const rounds = 6
	traj := NashTrajectory(alloc.FairShare{}, us, r0, NashOptions{}, rounds)
	opt := NashOptions{MaxIter: 1}
	r := r0
	for k := 1; k < len(traj); k++ {
		res, err := SolveNash(alloc.FairShare{}, us, r, opt)
		if err != nil {
			t.Fatal(err)
		}
		r = res.R
		for i := range r {
			if math.Float64bits(traj[k][i]) != math.Float64bits(r[i]) {
				t.Fatalf("round %d user %d: trajectory %v, stepwise %v", k, i, traj[k][i], r[i])
			}
		}
	}
}
