package game

import (
	"math/rand"
	"testing"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/numeric"
	"greednet/internal/utility"
)

// TestLemma5PlantNash verifies the paper's Lemma 5 construction: for any
// interior point and any MAC allocation, the exponential utility family
// with α/γ = ∂C_i/∂r_i and sufficiently sharp curvature makes that point a
// Nash equilibrium.
func TestLemma5PlantNash(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	for _, a := range []core.Allocation{alloc.FairShare{}, alloc.Proportional{}} {
		for trial := 0; trial < 25; trial++ {
			n := 2 + rng.Intn(3)
			r := make([]float64, n)
			total := 0.2 + 0.6*rng.Float64()
			sum := 0.0
			for i := range r {
				r[i] = 0.05 + rng.Float64()
				sum += r[i]
			}
			for i := range r {
				r[i] *= total / sum
			}
			c := a.Congestion(r)
			us := make(core.Profile, n)
			for i := range us {
				slope, _ := alloc.OwnDerivs(a, r, i)
				us[i] = utility.PlantNash(r[i], c[i], slope, 60, 60)
			}
			// The planted point satisfies the FDC...
			if resid := numeric.VecNormInf(NashResidual(a, us, r)); resid > 1e-6 {
				t.Fatalf("%s trial %d: planted FDC residual %v at r=%v", a.Name(), trial, resid, r)
			}
			// ...and no unilateral deviation is profitable.
			for i := range r {
				if g := DeviationGain(a, us[i], r, i, BROptions{}); g > 1e-6 {
					t.Fatalf("%s trial %d: user %d gains %v at planted point %v",
						a.Name(), trial, i, g, r)
				}
			}
		}
	}
}

// TestLemma5SolverRecoversPlantedPoint closes the loop: the best-response
// solver started elsewhere must come back to the planted equilibrium under
// Fair Share (whose equilibrium is unique, Theorem 4).
func TestLemma5SolverRecoversPlantedPoint(t *testing.T) {
	r := []float64{0.12, 0.2, 0.31}
	fs := alloc.FairShare{}
	c := fs.Congestion(r)
	us := make(core.Profile, len(r))
	for i := range us {
		slope, _ := alloc.OwnDerivs(fs, r, i)
		us[i] = utility.PlantNash(r[i], c[i], slope, 60, 60)
	}
	res, err := SolveNash(fs, us, []float64{0.05, 0.05, 0.05}, NashOptions{})
	if err != nil || !res.Converged {
		t.Fatalf("solve failed: %v", err)
	}
	if d := numeric.VecDist(res.R, r); d > 1e-4 {
		t.Errorf("solver found %v, planted %v (dist %v)", res.R, r, d)
	}
}
