package sweep

import (
	"bytes"
	"math"
	"testing"
)

// csvOf renders a table for byte comparison.
func csvOf(t *testing.T, tab Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSweepsByteIdenticalAcrossWorkers pins the parallel sweeps'
// determinism contract: the rendered CSV must be identical at workers=1
// and workers=8 for every pooled sweep.
func TestSweepsByteIdenticalAcrossWorkers(t *testing.T) {
	builds := []struct {
		name string
		fn   func(workers int) (Table, error)
	}{
		{"eigenvalue", func(w int) (Table, error) { return Eigenvalue(w, 4, []float64{0.5, 0.1, 0.02}) }},
		{"efficiency-gap", func(w int) (Table, error) { return EfficiencyGap(w, 0.2, []int{2, 4, 8}) }},
		{"newton-residuals", func(w int) (Table, error) { return NewtonResiduals(w, 3, 6) }},
	}
	for _, b := range builds {
		seq, err := b.fn(1)
		if err != nil {
			t.Fatalf("%s (workers=1): %v", b.name, err)
		}
		par, err := b.fn(8)
		if err != nil {
			t.Fatalf("%s (workers=8): %v", b.name, err)
		}
		if !bytes.Equal(csvOf(t, seq), csvOf(t, par)) {
			t.Errorf("%s: CSV differs between workers=1 and workers=8", b.name)
		}
	}
}

// TestNewtonResidualsColumnsPopulated guards the positional-assignment
// fix: both residual columns must carry finite leading entries (the old
// map-keyed-by-Name() lookup turned a renamed column into silent NaN).
func TestNewtonResidualsColumnsPopulated(t *testing.T) {
	tab, err := NewtonResiduals(0, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"resid_fairshare", "resid_fifo"} {
		vals := tab.Column(col)
		if len(vals) == 0 {
			t.Fatalf("column %s missing", col)
		}
		if math.IsNaN(vals[0]) {
			t.Errorf("column %s starts NaN; positional results regressed", col)
		}
	}
}
