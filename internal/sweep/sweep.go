// Package sweep generates the parameter-sweep data series behind the
// reproduction's figures: instability spectra versus congestion
// sensitivity, the selfish efficiency gap versus population size, victim
// congestion versus attacker rate, interactive delay versus bulk load, and
// learning-box collapse per round.  Each sweep returns a rectangular Table
// that can be written as CSV or rendered as an ASCII chart.
package sweep

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/dynamics"
	"greednet/internal/game"
	"greednet/internal/mm1"
	"greednet/internal/numeric"
	"greednet/internal/parallel"
	"greednet/internal/utility"
)

// Table is a rectangular data series with named columns.
type Table struct {
	// Name identifies the sweep.
	Name string
	// Header names the columns.
	Header []string
	// Rows holds the samples.
	Rows [][]float64
}

// WriteCSV writes the table in CSV form.
func (t Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	rec := make([]string, len(t.Header))
	for _, row := range t.Rows {
		if len(row) != len(t.Header) {
			return fmt.Errorf("sweep: ragged row in %s", t.Name)
		}
		for i, v := range row {
			rec[i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Column returns the values of the named column.
func (t Table) Column(name string) []float64 {
	idx := -1
	for i, h := range t.Header {
		if h == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil
	}
	out := make([]float64, len(t.Rows))
	for k, row := range t.Rows {
		out[k] = row[idx]
	}
	return out
}

// Eigenvalue sweeps the proportional relaxation spectral radius against
// the congestion sensitivity γ for N identical linear users, with the
// analytic prediction and the 1−N limit (the paper's §4.2.3 claim).
// Rows are computed independently on a pool of workers (≤ 0 means
// runtime.GOMAXPROCS(0)) and assembled in γ order, so the table is
// identical for every worker count; on error the table holds the rows
// that precede the first failing γ, matching the sequential contract.
func Eigenvalue(workers, n int, gammas []float64) (Table, error) {
	return EigenvalueCtx(context.Background(), workers, n, gammas)
}

// EigenvalueCtx is Eigenvalue under a context: the pool stops claiming new
// γ rows once ctx fires and the typed core.ErrCanceled / core.ErrDeadline
// is returned with whatever prefix of rows completed (assembly stops at
// the first missing row, so the partial table is still a clean prefix).
func EigenvalueCtx(ctx context.Context, workers, n int, gammas []float64) (Table, error) {
	t := Table{
		Name:   "eigenvalue",
		Header: []string{"gamma", "load", "rho", "rho_analytic", "limit"},
	}
	rows := make([][]float64, len(gammas))
	errs := make([]error, len(gammas))
	ctxErr := parallel.MapOrderedCtx(ctx, workers, len(gammas), func(k int) error {
		gamma := gammas[k]
		us := utility.Identical(utility.NewLinear(1, gamma), n)
		r0 := make([]float64, n)
		for i := range r0 {
			r0[i] = 0.5 / float64(n)
		}
		res, err := game.SolveNashCtx(ctx, alloc.Proportional{}, us, r0, game.NashOptions{})
		if err != nil || !res.Converged {
			errs[k] = fmt.Errorf("sweep: proportional Nash failed at γ=%v", gamma)
			return nil
		}
		A := game.RelaxationMatrix(alloc.Proportional{}, us, res.R, 1e-6)
		rho, err := numeric.SpectralRadius(A)
		if err != nil {
			errs[k] = err
			return nil
		}
		s := mm1.Sum(res.R)
		tt := 1 - s
		analytic := float64(n-1) * (tt + 2*res.R[0]) / (2 * (tt + res.R[0]))
		rows[k] = []float64{gamma, s, rho, analytic, float64(n - 1)}
		return nil
	})
	if ctxErr != nil {
		// Canceled: which rows ran (and hence which row errors exist) is
		// scheduling-dependent, so report the typed ctx error with the
		// clean prefix of completed rows.
		for k := range gammas {
			if rows[k] == nil {
				break
			}
			t.Rows = append(t.Rows, rows[k])
		}
		return t, ctxErr
	}
	for k := range gammas {
		if errs[k] != nil {
			return t, errs[k]
		}
		t.Rows = append(t.Rows, rows[k])
	}
	return t, nil
}

// EfficiencyGap sweeps the per-user utility loss of the FIFO Nash
// equilibrium relative to the symmetric Pareto point as the population
// grows (the tragedy-of-the-commons curve of §4.1.1).  Per-population
// rows run on a pool of workers and assemble in input order; see
// Eigenvalue for the determinism contract.
func EfficiencyGap(workers int, gamma float64, ns []int) (Table, error) {
	return EfficiencyGapCtx(context.Background(), workers, gamma, ns)
}

// EfficiencyGapCtx is EfficiencyGap under a context; see EigenvalueCtx
// for the cancellation contract (typed error, clean prefix of rows).
func EfficiencyGapCtx(ctx context.Context, workers int, gamma float64, ns []int) (Table, error) {
	t := Table{
		Name:   "efficiency-gap",
		Header: []string{"n", "nash_rate", "pareto_rate", "u_nash", "u_pareto", "relative_loss"},
	}
	u := utility.NewLinear(1, gamma)
	rows := make([][]float64, len(ns))
	errs := make([]error, len(ns))
	ctxErr := parallel.MapOrderedCtx(ctx, workers, len(ns), func(k int) error {
		n := ns[k]
		rp, cp, ok := game.SymmetricParetoRate(u, n)
		if !ok {
			errs[k] = fmt.Errorf("sweep: no Pareto rate for n=%d", n)
			return nil
		}
		us := utility.Identical(u, n)
		r0 := make([]float64, n)
		for i := range r0 {
			r0[i] = 0.5 / float64(n)
		}
		res, err := game.SolveNashCtx(ctx, alloc.Proportional{}, us, r0, game.NashOptions{})
		if err != nil || !res.Converged {
			errs[k] = fmt.Errorf("sweep: FIFO Nash failed at n=%d", n)
			return nil
		}
		uN := u.Value(res.R[0], res.C[0])
		uP := u.Value(rp, cp)
		loss := 0.0
		if uP != 0 { //lint:allow floateq division guard: relative loss undefined at exactly-zero utility
			loss = (uP - uN) / math.Abs(uP)
		}
		rows[k] = []float64{float64(n), res.R[0], rp, uN, uP, loss}
		return nil
	})
	if ctxErr != nil {
		for k := range ns {
			if rows[k] == nil {
				break
			}
			t.Rows = append(t.Rows, rows[k])
		}
		return t, ctxErr
	}
	for k := range ns {
		if errs[k] != nil {
			return t, errs[k]
		}
		t.Rows = append(t.Rows, rows[k])
	}
	return t, nil
}

// Protection sweeps a victim's congestion against the attacker's rate
// under FIFO and Fair Share, with the Definition-7 bound (the cheater
// curve).
func Protection(victimRate float64, victims int, attackRates []float64) Table {
	// The background context cannot fire, so the error path is dead.
	t, _ := ProtectionCtx(context.Background(), victimRate, victims, attackRates)
	return t
}

// ProtectionCtx is Protection under a context, polled once per attack
// rate; a canceled sweep returns the rows computed so far with the typed
// core.ErrCanceled / core.ErrDeadline.
func ProtectionCtx(ctx context.Context, victimRate float64, victims int, attackRates []float64) (Table, error) {
	t := Table{
		Name:   "protection",
		Header: []string{"attack_rate", "victim_c_fifo", "victim_c_fairshare", "bound"},
	}
	n := victims + 1
	bound := mm1.ProtectionBound(n, victimRate) //lint:allow feasguard Definition-7 bound is the reference curve; finite whenever the victim rate is
	for _, atk := range attackRates {
		if err := core.CtxErr(ctx); err != nil {
			return t, err
		}
		r := make([]float64, n)
		for i := 0; i < victims; i++ {
			r[i] = victimRate
		}
		r[victims] = atk
		cf := alloc.Proportional{}.CongestionOf(r, 0) //lint:allow feasguard the cheater sweep pushes the attacker past capacity by design
		cs := alloc.FairShare{}.CongestionOf(r, 0)    //lint:allow feasguard the cheater sweep pushes the attacker past capacity by design
		t.Rows = append(t.Rows, []float64{atk, cf, cs, bound})
	}
	return t, nil
}

// GHCWidths sweeps the generalized-hill-climbing candidate-box width per
// elimination round under both disciplines (the Theorem-5 collapse curve).
// Rows are padded with the terminal width once a run stops.
func GHCWidths(n int, gamma float64, rounds int) Table {
	// The background context cannot fire, so the error path is dead.
	t, _ := GHCWidthsCtx(context.Background(), n, gamma, rounds)
	return t
}

// GHCWidthsCtx is GHCWidths under a context, threaded through both
// elimination runs; a canceled sweep returns an empty-rowed table with
// the typed core.ErrCanceled / core.ErrDeadline (per-round widths from a
// truncated run would silently flatten the collapse curve).
func GHCWidthsCtx(ctx context.Context, n int, gamma float64, rounds int) (Table, error) {
	t := Table{
		Name:   "ghc-widths",
		Header: []string{"round", "width_fairshare", "width_fifo"},
	}
	us := utility.Identical(utility.NewLinear(1, gamma), n)
	opt := dynamics.EliminationOptions{MaxRounds: rounds, Tol: 1e-9}
	fs, err := dynamics.GeneralizedHillClimbCtx(ctx, alloc.FairShare{}, us, dynamics.NewBox(n, 1e-6, 1-1e-6), opt)
	if err != nil {
		return t, err
	}
	pr, err := dynamics.GeneralizedHillClimbCtx(ctx, alloc.Proportional{}, us, dynamics.NewBox(n, 1e-6, 1-1e-6), opt)
	if err != nil {
		return t, err
	}
	get := func(ws []float64, k int) float64 {
		if k < len(ws) {
			return ws[k]
		}
		if len(ws) == 0 {
			return 1
		}
		return ws[len(ws)-1]
	}
	//lint:allow ctxflow O(rounds) row assembly from widths both solves already produced; nothing cancelable remains
	for k := 0; k < rounds; k++ {
		t.Rows = append(t.Rows, []float64{float64(k + 1), get(fs.Widths, k), get(pr.Widths, k)})
	}
	return t, nil
}

// InteractiveDelay sweeps the analytic delay of a fixed light flow as a
// bulk flow's offered rate grows, under FIFO and Fair Share (the §5.2
// FTP-vs-Telnet curve).
func InteractiveDelay(lightRate float64, bulkRates []float64) Table {
	// The background context cannot fire, so the error path is dead.
	t, _ := InteractiveDelayCtx(context.Background(), lightRate, bulkRates)
	return t
}

// InteractiveDelayCtx is InteractiveDelay under a context, polled once
// per bulk rate; a canceled sweep returns the rows computed so far with
// the typed core.ErrCanceled / core.ErrDeadline.
func InteractiveDelayCtx(ctx context.Context, lightRate float64, bulkRates []float64) (Table, error) {
	t := Table{
		Name:   "interactive-delay",
		Header: []string{"bulk_rate", "delay_fifo", "delay_fairshare"},
	}
	for _, b := range bulkRates {
		if err := core.CtxErr(ctx); err != nil {
			return t, err
		}
		r := []float64{lightRate, b}
		df := alloc.Proportional{}.CongestionOf(r, 0) / lightRate //lint:allow feasguard the FTP-vs-Telnet sweep drives the bulk flow toward saturation by design
		ds := alloc.FairShare{}.CongestionOf(r, 0) / lightRate    //lint:allow feasguard the FTP-vs-Telnet sweep drives the bulk flow toward saturation by design
		t.Rows = append(t.Rows, []float64{b, df, ds})
	}
	return t, nil
}

// ReactionCurves samples the two users' best-reply functions on a grid —
// the classic duopoly-style figure whose crossing is the Nash equilibrium.
// Columns: the opponent's rate, user 1's best reply to it, and user 0's
// best reply to it.
func ReactionCurves(a core.Allocation, us core.Profile, points int) (Table, error) {
	return ReactionCurvesCtx(context.Background(), a, us, points)
}

// ReactionCurvesCtx is ReactionCurves under a context, polled once per
// grid point; a canceled sweep returns the rows computed so far with the
// typed core.ErrCanceled / core.ErrDeadline.
func ReactionCurvesCtx(ctx context.Context, a core.Allocation, us core.Profile, points int) (Table, error) {
	t := Table{
		Name:   "reaction-curves",
		Header: []string{"opponent_rate", "br_user1", "br_user0"},
	}
	if len(us) != 2 {
		return t, fmt.Errorf("sweep: ReactionCurves needs exactly 2 users, got %d", len(us))
	}
	if points < 2 {
		points = 2
	}
	// One solver workspace and two reusable profile vectors serve every
	// grid point; only the opponent slot changes between points.
	ws := game.NewWorkspace()
	r1 := []float64{0, 0.1} // user 1 replies to user 0 at x
	r0 := []float64{0.1, 0} // user 0 replies to user 1 at x
	for k := 0; k < points; k++ {
		if err := core.CtxErr(ctx); err != nil {
			return t, err
		}
		x := 0.01 + 0.9*float64(k)/float64(points-1)
		r1[0] = x
		r0[1] = x
		br1, _ := game.BestResponseWS(ws, a, us[1], r1, 1, game.BROptions{})
		br0, _ := game.BestResponseWS(ws, a, us[0], r0, 0, game.BROptions{})
		t.Rows = append(t.Rows, []float64{x, br1, br0})
	}
	return t, nil
}

// NewtonResiduals sweeps synchronous-Newton residuals per step under both
// disciplines near their equilibria (the Theorem-7 convergence curve).
// The two disciplines' solves run concurrently on the pool, and results
// are kept positionally — column i belongs to allocs[i] by construction,
// so a renamed Name() can never silently turn a column into all-NaN.
func NewtonResiduals(workers, n, steps int) (Table, error) {
	return NewtonResidualsCtx(context.Background(), workers, n, steps)
}

// NewtonResidualsCtx is NewtonResiduals under a context; a canceled
// sweep returns an empty-rowed table with the typed core.ErrCanceled /
// core.ErrDeadline (a single missing discipline would leave an all-NaN
// column that reads as divergence).
func NewtonResidualsCtx(ctx context.Context, workers, n, steps int) (Table, error) {
	t := Table{
		Name:   "newton-residuals",
		Header: []string{"step", "resid_fairshare", "resid_fifo"},
	}
	us := make(core.Profile, n)
	//lint:allow ctxflow O(n) profile construction before the sweep; the deadline governs the solves, not their setup
	for i := range us {
		us[i] = utility.NewLinear(1, 0.12+0.08*float64(i))
	}
	allocs := []core.Allocation{alloc.FairShare{}, alloc.Proportional{}}
	resids := make([][]float64, len(allocs))
	errs := make([]error, len(allocs))
	ctxErr := parallel.MapOrderedCtx(ctx, workers, len(allocs), func(j int) error {
		a := allocs[j]
		r0 := make([]float64, n)
		for i := range r0 {
			r0[i] = 0.3 / float64(n)
		}
		res, err := game.SolveNashCtx(ctx, a, us, r0, game.NashOptions{})
		if err != nil || !res.Converged {
			errs[j] = fmt.Errorf("sweep: Nash failed for %s", a.Name())
			return nil
		}
		start := append([]float64(nil), res.R...)
		for i := range start {
			start[i] *= 1.02
		}
		resids[j] = game.NewtonConvergence(a, us, start, steps)
		return nil
	})
	if ctxErr != nil {
		return t, ctxErr
	}
	for _, err := range errs {
		if err != nil {
			return t, err
		}
	}
	fs, pr := resids[0], resids[1]
	for k := 0; k <= steps; k++ {
		row := []float64{float64(k), math.NaN(), math.NaN()}
		if k < len(fs) {
			row[1] = fs[k]
		}
		if k < len(pr) {
			row[2] = pr[k]
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
