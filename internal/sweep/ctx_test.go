package sweep

import (
	"context"
	"errors"
	"testing"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/utility"
)

// TestSweepCtxCanceled checks every sweep's Ctx variant reports the typed
// cancellation error on a pre-canceled context (the sweeps poll at
// claim/row granularity, so a dead-on-arrival ctx must stop all of them
// before any work).
func TestSweepCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	us2 := utility.Identical(utility.NewLinear(1, 0.25), 2)
	checks := []struct {
		name string
		run  func() error
	}{
		{"Eigenvalue", func() error {
			_, err := EigenvalueCtx(ctx, 1, 3, []float64{0.2, 0.3})
			return err
		}},
		{"EfficiencyGap", func() error {
			_, err := EfficiencyGapCtx(ctx, 1, 0.25, []int{2, 3})
			return err
		}},
		{"Protection", func() error {
			_, err := ProtectionCtx(ctx, 0.1, 2, []float64{0.1, 0.5})
			return err
		}},
		{"GHCWidths", func() error {
			_, err := GHCWidthsCtx(ctx, 2, 0.25, 5)
			return err
		}},
		{"InteractiveDelay", func() error {
			_, err := InteractiveDelayCtx(ctx, 0.05, []float64{0.1, 0.5})
			return err
		}},
		{"ReactionCurves", func() error {
			_, err := ReactionCurvesCtx(ctx, alloc.FairShare{}, us2, 4)
			return err
		}},
		{"NewtonResiduals", func() error {
			_, err := NewtonResidualsCtx(ctx, 1, 2, 3)
			return err
		}},
	}
	for _, c := range checks {
		if err := c.run(); !errors.Is(err, core.ErrCanceled) {
			t.Errorf("%s: got %v, want core.ErrCanceled", c.name, err)
		}
	}
}

// TestSweepCtxLiveMatchesPlain checks the wrapper contract on one pooled
// and one sequential sweep: under a live context the Ctx variant produces
// the same table as the plain function.
func TestSweepCtxLiveMatchesPlain(t *testing.T) {
	gammas := []float64{0.2, 0.3}
	plain, err := Eigenvalue(1, 3, gammas)
	if err != nil {
		t.Fatalf("Eigenvalue: %v", err)
	}
	viaCtx, err := EigenvalueCtx(context.Background(), 1, 3, gammas)
	if err != nil {
		t.Fatalf("EigenvalueCtx: %v", err)
	}
	if len(plain.Rows) != len(viaCtx.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(plain.Rows), len(viaCtx.Rows))
	}
	for k := range plain.Rows {
		for i := range plain.Rows[k] {
			if plain.Rows[k][i] != viaCtx.Rows[k][i] { // deterministic sweeps must agree bitwise with and without a live ctx
				t.Errorf("row %d col %d: %v vs %v", k, i, plain.Rows[k][i], viaCtx.Rows[k][i])
			}
		}
	}
	bulk := []float64{0.1, 0.4}
	p2 := InteractiveDelay(0.05, bulk)
	c2, err := InteractiveDelayCtx(context.Background(), 0.05, bulk)
	if err != nil {
		t.Fatalf("InteractiveDelayCtx: %v", err)
	}
	if len(p2.Rows) != len(c2.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(p2.Rows), len(c2.Rows))
	}
}
