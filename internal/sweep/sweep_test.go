package sweep

import (
	"bytes"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/utility"
	"math"
	"strings"
	"testing"
)

func TestEigenvalueSweepShape(t *testing.T) {
	tab, err := Eigenvalue(0, 4, []float64{0.5, 0.1, 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	rho := tab.Column("rho")
	// Instability grows as γ shrinks and stays below the 1−N limit.
	for k := 1; k < len(rho); k++ {
		if rho[k] <= rho[k-1] {
			t.Errorf("ρ should grow as γ shrinks: %v", rho)
		}
	}
	for k, v := range rho {
		if v >= 3 {
			t.Errorf("row %d: ρ=%v should stay below N−1=3", k, v)
		}
		analytic := tab.Column("rho_analytic")[k]
		if math.Abs(v-analytic) > 0.03*analytic {
			t.Errorf("row %d: ρ=%v vs analytic %v", k, v, analytic)
		}
	}
}

func TestEfficiencyGapGrowsWithN(t *testing.T) {
	tab, err := EfficiencyGap(0, 0.2, []int{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	loss := tab.Column("relative_loss")
	for k := range loss {
		if loss[k] <= 0 {
			t.Errorf("loss should be positive: %v", loss)
		}
		if k > 0 && loss[k] <= loss[k-1] {
			t.Errorf("loss should grow with n: %v", loss)
		}
	}
}

func TestProtectionSweep(t *testing.T) {
	tab := Protection(0.1, 2, []float64{0.2, 0.5, 0.7})
	fifo := tab.Column("victim_c_fifo")
	fs := tab.Column("victim_c_fairshare")
	bound := tab.Column("bound")
	for k := range tab.Rows {
		if fs[k] > bound[k]+1e-12 {
			t.Errorf("FS above bound at row %d", k)
		}
		if fifo[k] <= fs[k] {
			t.Errorf("FIFO should exceed FS at row %d: %v vs %v", k, fifo[k], fs[k])
		}
	}
	// FIFO blows up as the attack rate grows.
	if fifo[2] <= fifo[0] {
		t.Errorf("FIFO congestion should grow with attack: %v", fifo)
	}
}

func TestGHCWidthsSweep(t *testing.T) {
	tab := GHCWidths(3, 0.25, 12)
	fs := tab.Column("width_fairshare")
	fifo := tab.Column("width_fifo")
	if fs[len(fs)-1] > 0.01 {
		t.Errorf("FS width should collapse: %v", fs)
	}
	if fifo[len(fifo)-1] < 0.5 {
		t.Errorf("FIFO width should stall wide: %v", fifo)
	}
}

func TestInteractiveDelaySweep(t *testing.T) {
	tab := InteractiveDelay(0.02, []float64{0.1, 0.5, 0.9})
	df := tab.Column("delay_fifo")
	ds := tab.Column("delay_fairshare")
	// FS delay for the light flow is flat; FIFO delay explodes.
	if math.Abs(ds[2]-ds[0]) > 1e-9 {
		t.Errorf("FS light-flow delay should be load-independent: %v", ds)
	}
	if df[2] < 5*df[0] {
		t.Errorf("FIFO light-flow delay should explode: %v", df)
	}
}

func TestNewtonResidualsSweep(t *testing.T) {
	tab, err := NewtonResiduals(0, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	fs := tab.Column("resid_fairshare")
	if fs[len(fs)-1] > 1e-6*fs[0] {
		t.Errorf("FS Newton residuals should collapse: %v", fs)
	}
}

func TestReactionCurves(t *testing.T) {
	us := core.Profile{utility.NewLinear(1, 0.25), utility.NewLinear(1, 0.25)}
	tab, err := ReactionCurves(alloc.FairShare{}, us, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 20 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	// Under Fair Share a user's best reply is INSENSITIVE to a larger
	// opponent (insulation): the curve flattens once the opponent exceeds
	// the reply.
	br1 := tab.Column("br_user1")
	last := br1[len(br1)-1]
	mid := br1[len(br1)/2]
	if mathAbs(last-mid) > 1e-4 {
		t.Errorf("FS reaction curve should flatten: mid %v vs last %v", mid, last)
	}
	// And the flat level is the user's standalone optimum against equal
	// senders.
	if _, err := ReactionCurves(alloc.FairShare{}, us[:1], 10); err == nil {
		t.Error("needs exactly two users")
	}
	// FIFO reaction curves keep decreasing (coupling).
	tabF, err := ReactionCurves(alloc.Proportional{}, us, 20)
	if err != nil {
		t.Fatal(err)
	}
	brF := tabF.Column("br_user1")
	if !(brF[3] > brF[10] && brF[10] > brF[16]) {
		t.Errorf("FIFO reaction curve should decrease: %v", brF)
	}
}

func mathAbs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestWriteCSV(t *testing.T) {
	tab := Protection(0.1, 2, []float64{0.2, 0.5})
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV should have header + 2 rows: %q", out)
	}
	if !strings.HasPrefix(lines[0], "attack_rate,") {
		t.Errorf("bad header: %q", lines[0])
	}
}

func TestWriteCSVRaggedRejected(t *testing.T) {
	tab := Table{Header: []string{"a", "b"}, Rows: [][]float64{{1}}}
	if err := tab.WriteCSV(&bytes.Buffer{}); err == nil {
		t.Error("ragged table should error")
	}
}

func TestColumnMissing(t *testing.T) {
	tab := Table{Header: []string{"a"}, Rows: [][]float64{{1}}}
	if tab.Column("nope") != nil {
		t.Error("missing column should be nil")
	}
}
