package chaos

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestServiceInjectorDeterministic pins the reproducibility contract:
// two injectors with the same seed and knobs emit the identical fault
// schedule across every hook.
func TestServiceInjectorDeterministic(t *testing.T) {
	cfg := ServiceInjector{
		SlowEvery: 3, SlowDelay: 5 * time.Millisecond,
		StallProb: 0.2, MalformProb: 0.3, SkewProb: 0.25,
	}
	a := NewServiceInjector(42, cfg)
	b := NewServiceInjector(42, cfg)
	body := []byte(`{"client":"c7","rate":0.05}`)
	for i := 0; i < 500; i++ {
		if da, db := a.Delay(), b.Delay(); da != db {
			t.Fatalf("step %d: delays diverge: %v vs %v", i, da, db)
		}
		if sa, sb := a.Stall(), b.Stall(); sa != sb {
			t.Fatalf("step %d: stall decisions diverge", i)
		}
		if ma, mb := a.MutateBody(body), b.MutateBody(body); !bytes.Equal(ma, mb) {
			t.Fatalf("step %d: mutations diverge: %q vs %q", i, ma, mb)
		}
		if ka, kb := a.SkewDeadline(250), b.SkewDeadline(250); ka != kb {
			t.Fatalf("step %d: skews diverge: %d vs %d", i, ka, kb)
		}
	}
}

// TestServiceInjectorQuiet pins the pass-through contract: every knob
// at its zero value means no hook ever perturbs anything.
func TestServiceInjectorQuiet(t *testing.T) {
	inj := NewServiceInjector(1, ServiceInjector{})
	body := []byte(`{"client":"a","rate":0.1}`)
	for i := 0; i < 200; i++ {
		if d := inj.Delay(); d != 0 {
			t.Fatalf("quiet injector delayed %v", d)
		}
		if inj.Stall() {
			t.Fatal("quiet injector stalled")
		}
		if got := inj.MutateBody(body); !bytes.Equal(got, body) {
			t.Fatalf("quiet injector mutated body to %q", got)
		}
		if ms := inj.SkewDeadline(250); ms != 250 {
			t.Fatalf("quiet injector skewed deadline to %d", ms)
		}
	}
}

// TestServiceInjectorMutatesWithoutAliasing checks MutateBody never
// scribbles on the caller's slice, and that corrupted bodies really are
// corrupt: none of them may decode into a clean update with the
// original finite rate intact AND parse as valid JSON unchanged.
func TestServiceInjectorMutateBody(t *testing.T) {
	inj := NewServiceInjector(7, ServiceInjector{MalformProb: 1})
	body := []byte(`{"client":"a","rate":0.1}`)
	orig := append([]byte(nil), body...)
	sawChange := false
	for i := 0; i < 100; i++ {
		out := inj.MutateBody(body)
		if !bytes.Equal(body, orig) {
			t.Fatal("MutateBody modified the input slice")
		}
		if !bytes.Equal(out, body) {
			sawChange = true
			var v struct {
				Client string  `json:"client"`
				Rate   float64 `json:"rate"`
			}
			if err := json.Unmarshal(out, &v); err == nil && v.Client == "a" && v.Rate == 0.1 {
				t.Fatalf("mutation %q left the payload semantically intact", out)
			}
		}
	}
	if !sawChange {
		t.Fatal("MalformProb=1 never corrupted the body")
	}
}

// TestServiceInjectorSkewModes checks both skew modes appear and that
// negative skews are genuinely negative (a clock that ran ahead).
func TestServiceInjectorSkewModes(t *testing.T) {
	inj := NewServiceInjector(11, ServiceInjector{SkewProb: 1})
	var negative, tiny int
	for i := 0; i < 200; i++ {
		switch ms := inj.SkewDeadline(250); {
		case ms < 0:
			negative++
		case ms == 1:
			tiny++
		default:
			t.Fatalf("SkewProb=1 returned unskewed budget %d", ms)
		}
	}
	if negative == 0 || tiny == 0 {
		t.Fatalf("expected both skew modes, got negative=%d tiny=%d", negative, tiny)
	}
}

// TestServiceInjectorSlowSchedule checks the slow-client cadence: with
// SlowEvery=4 exactly every fourth request is delayed.
func TestServiceInjectorSlowSchedule(t *testing.T) {
	inj := NewServiceInjector(3, ServiceInjector{SlowEvery: 4, SlowDelay: time.Millisecond})
	for i := 1; i <= 40; i++ {
		d := inj.Delay()
		if want := i%4 == 0; (d > 0) != want {
			t.Fatalf("request %d: delay %v, want slowed=%v", i, d, want)
		}
	}
}
