package chaos

import (
	"math"
	"testing"

	"greednet/internal/alloc"
)

// FuzzAllocationPassThrough fuzzes the disabled-injection contract: with
// every knob off the chaos wrapper must be bitwise transparent for ANY
// rate vector — feasible, infeasible, or degenerate — and repeated calls
// must stay transparent (the call counter must not leak into reports).
func FuzzAllocationPassThrough(f *testing.F) {
	f.Add(0.2, 0.3, 0.1)
	f.Add(0.5, 0.5, 0.5)   // infeasible: Σr > 1
	f.Add(1e-12, 0.9, 0.0) // zero rate
	f.Add(2.0, 3.0, 4.0)   // far outside the domain
	f.Fuzz(func(t *testing.T, r0, r1, r2 float64) {
		for _, v := range []float64{r0, r1, r2} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 10 {
				t.Skip("the Allocation contract covers finite nonnegative rates")
			}
		}
		r := []float64{r0, r1, r2}
		for _, inner := range []interface {
			Name() string
			Congestion([]float64) []float64
			CongestionOf([]float64, int) float64
		}{alloc.FairShare{}, alloc.Proportional{}} {
			wrapped := &Allocation{Inner: inner}
			for trial := 0; trial < 2; trial++ {
				want := inner.Congestion(r)
				got := wrapped.Congestion(r)
				if len(got) != len(want) {
					t.Fatalf("%s: length %d, want %d", inner.Name(), len(got), len(want))
				}
				for i := range want {
					same := got[i] == want[i] || (math.IsNaN(got[i]) && math.IsNaN(want[i])) // pass-through must be exact, not approximate
					if !same {
						t.Errorf("%s: Congestion(%v)[%d] = %v, want %v", inner.Name(), r, i, got[i], want[i])
					}
					single := wrapped.CongestionOf(r, i)
					direct := inner.CongestionOf(r, i)
					sameSingle := single == direct || (math.IsNaN(single) && math.IsNaN(direct)) // pass-through must be exact, not approximate
					if !sameSingle {
						t.Errorf("%s: CongestionOf(%v, %d) = %v, want %v", inner.Name(), r, i, single, direct)
					}
				}
			}
		}
	})
}
