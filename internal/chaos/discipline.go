package chaos

import (
	"math/rand"

	"greednet/internal/des"
	"greednet/internal/randdist"
)

// Discipline wraps an inner service discipline and perturbs its service
// order: every SwapEvery-th dequeue (jittered by the wrapper's own seeded
// rng) it pulls TWO packets from the inner discipline, serves the second,
// and re-enqueues the first.  The perturbation preserves the packet
// population — nothing is lost or duplicated — so work conservation and
// the total-queue law still hold, but per-user service guarantees of the
// inner discipline degrade.  Chaos tests use it to confirm the DES
// validators actually detect a discipline that misbehaves.
//
// The wrapper owns its rng (derived from Seed at Reset), deliberately NOT
// the simulator's shared stream: injecting faults must not shift the
// arrival process, so a chaos run stays event-for-event comparable with
// its clean twin.
type Discipline struct {
	// Inner is the discipline being perturbed.
	Inner des.Discipline
	// Seed derives the wrapper's private rng at Reset.
	Seed int64
	// SwapEvery is the mean number of dequeues between perturbations;
	// values < 1 disable the wrapper (exact pass-through).
	SwapEvery int

	rng *rand.Rand
}

// Name identifies the wrapper and its inner discipline.
func (d *Discipline) Name() string { return "chaos(" + d.Inner.Name() + ")" }

// Reset prepares the inner discipline and the wrapper's private rng.
func (d *Discipline) Reset(rates []float64, rng *rand.Rand) {
	d.Inner.Reset(rates, rng)
	d.rng = randdist.NewRand(d.Seed)
}

// Enqueue delegates to the inner discipline.
func (d *Discipline) Enqueue(p des.Packet) { d.Inner.Enqueue(p) }

// Len delegates to the inner discipline.
func (d *Discipline) Len() int { return d.Inner.Len() }

// Dequeue serves the inner discipline's choice, except at perturbation
// epochs (when at least two packets are queued), where it serves the
// inner discipline's SECOND choice and puts the first back.
func (d *Discipline) Dequeue() des.Packet {
	if d.SwapEvery >= 1 && d.Inner.Len() >= 2 && d.rng.Intn(d.SwapEvery) == 0 {
		first := d.Inner.Dequeue()
		second := d.Inner.Dequeue()
		d.Inner.Enqueue(first)
		return second
	}
	return d.Inner.Dequeue()
}
