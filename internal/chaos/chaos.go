// Package chaos holds deterministic, seedable fault injectors used to
// prove the tree's degradation paths actually fire: a congestion-function
// wrapper that injects NaNs, divergent congestion, or never-converging
// best-response landscapes; a wall-clock slowdown wrapper for exercising
// deadlines; and a service-discipline wrapper that perturbs the service
// order.  Everything here is driven only by its configuration and its
// seed — two runs with the same knobs produce the same faults — so chaos
// tests are as reproducible as ordinary ones.
//
// The injectors live in the library tree (not under _test.go) so CLI
// smoke tests and the experiment harness can reach them, but nothing in
// the production paths imports them.
package chaos

import (
	"math"
	"time"

	"greednet/internal/core"
)

// Allocation wraps an inner allocation and perturbs its congestion
// reports according to the enabled knobs.  With every knob at its zero
// value it is an exact pass-through (the fuzz suite pins this).  The
// wrapper keeps a per-instance call counter, so like the disciplines it
// decorates it is single-goroutine; give each concurrent run its own
// instance.
type Allocation struct {
	// Inner is the allocation being perturbed.
	Inner core.Allocation
	// NaNAfter, when positive, makes every congestion report after the
	// NaNAfter-th call return NaN entries — the "analytic model left its
	// domain silently" failure.
	NaNAfter int
	// Diverge, when positive, inflates every congestion entry by
	// (1 + Diverge·calls): reports grow without bound, the signature of a
	// divergent fixed-point iteration.
	Diverge float64
	// Oscillate, when in (0, 1), multiplies the k-th congestion report by
	// 1 + Oscillate·sin(k).  The perturbation is bounded and fully
	// deterministic but quasi-periodic — its period is irrational in
	// calls — so it can never phase-lock with a solver's per-round call
	// pattern: any solver chasing a fixed point through this wrapper sees
	// a target that never stops moving.  (A period-2 flip would be
	// invisible to a solver making an even number of calls per round.)
	Oscillate float64

	calls int
}

// Name identifies the wrapper and its inner discipline.
func (a *Allocation) Name() string { return "chaos(" + a.Inner.Name() + ")" }

// quiet reports whether every injection knob is off, i.e. the wrapper is
// an exact pass-through.
func (a *Allocation) quiet() bool {
	return a.NaNAfter <= 0 && a.Diverge <= 0 && a.Oscillate <= 0
}

// factor returns the multiplicative perturbation for the current call and
// advances the call counter; NaN means "poison the report".
func (a *Allocation) factor() float64 {
	a.calls++
	if a.NaNAfter > 0 && a.calls > a.NaNAfter {
		return math.NaN()
	}
	f := 1.0
	if a.Diverge > 0 {
		f *= 1 + a.Diverge*float64(a.calls)
	}
	if a.Oscillate > 0 {
		f *= 1 + a.Oscillate*math.Sin(float64(a.calls))
	}
	return f
}

// Congestion returns the inner congestion vector under the configured
// perturbation.
func (a *Allocation) Congestion(r []core.Rate) []core.Congestion {
	c := a.Inner.Congestion(r)
	if a.quiet() {
		return c
	}
	f := a.factor()
	for i := range c {
		c[i] *= f
	}
	return c
}

// CongestionOf returns the inner C_i(r) under the configured perturbation.
func (a *Allocation) CongestionOf(r []core.Rate, i int) core.Congestion {
	c := a.Inner.CongestionOf(r, i)
	if a.quiet() {
		return c
	}
	return c * core.Congestion(a.factor())
}

// SlowAllocation wraps an inner allocation and sleeps before every
// congestion evaluation.  It exists to make wall-clock deadlines fire
// deterministically in tests: a solver that evaluates congestion in its
// inner loop becomes arbitrarily slow without any busy-waiting.
type SlowAllocation struct {
	// Inner is the allocation being slowed down.
	Inner core.Allocation
	// Delay is the per-call sleep.
	Delay time.Duration
}

// Name identifies the wrapper and its inner discipline.
func (s *SlowAllocation) Name() string { return "slow(" + s.Inner.Name() + ")" }

// Congestion sleeps, then delegates.
func (s *SlowAllocation) Congestion(r []core.Rate) []core.Congestion {
	time.Sleep(s.Delay)
	return s.Inner.Congestion(r)
}

// CongestionOf sleeps, then delegates.
func (s *SlowAllocation) CongestionOf(r []core.Rate, i int) core.Congestion {
	time.Sleep(s.Delay)
	return s.Inner.CongestionOf(r, i)
}
