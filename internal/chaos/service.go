package chaos

import (
	"math/rand"
	"time"

	"greednet/internal/randdist"
)

// ServiceInjector perturbs the traffic a simulated client sends at the
// greedd boundary.  It models the four client-side pathologies the
// service must shed rather than absorb:
//
//   - slow-client: a delay before each request, so queue heads age;
//   - stalled-connection: a request that opens but never completes,
//     exercising server read timeouts and drain accounting;
//   - malformed-payload: deterministic corruption of the JSON body,
//     which must come back 400/malformed, never 500;
//   - deadline-skew: a client whose clock is wrong, shipping budgets
//     that are negative or absurdly small.
//
// Like the other injectors in this package it is driven only by its
// knobs and its seed: two instances with the same configuration emit
// the same fault schedule.  The embedded rng makes an instance
// single-goroutine; give each simulated client its own (seeded, say,
// by client index).  With every knob at its zero value each hook is an
// exact pass-through.
type ServiceInjector struct {
	// SlowEvery, when positive, makes every SlowEvery-th request pause
	// for SlowDelay before being sent.
	SlowEvery int
	// SlowDelay is the pre-request pause for slowed requests.
	SlowDelay time.Duration
	// StallProb is the per-request probability of the connection
	// stalling: the harness opens the request and then abandons it
	// instead of completing the round trip.
	StallProb float64
	// MalformProb is the per-request probability of the JSON body being
	// corrupted before it is sent.
	MalformProb float64
	// SkewProb is the per-request probability of the deadline budget
	// being replaced by a skewed one (negative or near-zero).
	SkewProb float64

	rng   *rand.Rand
	calls int
}

// NewServiceInjector returns an injector whose fault schedule is fully
// determined by the configuration and seed.
func NewServiceInjector(seed int64, cfg ServiceInjector) *ServiceInjector {
	inj := cfg
	inj.rng = randdist.NewRand(seed)
	inj.calls = 0
	return &inj
}

// Delay returns the pre-send pause for the next request (slow-client).
// Zero when the request is not slowed.
func (inj *ServiceInjector) Delay() time.Duration {
	inj.calls++
	if inj.SlowEvery > 0 && inj.calls%inj.SlowEvery == 0 {
		return inj.SlowDelay
	}
	return 0
}

// Stall reports whether the next request's connection should be opened
// and then abandoned mid-flight (stalled-connection).
func (inj *ServiceInjector) Stall() bool {
	return inj.StallProb > 0 && inj.rng.Float64() < inj.StallProb
}

// MutateBody possibly corrupts a JSON request body (malformed-payload).
// The corruption mode is drawn deterministically from the injector's
// rng: truncation, a raw NaN literal spliced into the rate field, a
// flipped byte, or leading garbage.  The input slice is never modified.
func (inj *ServiceInjector) MutateBody(body []byte) []byte {
	if inj.MalformProb <= 0 || inj.rng.Float64() >= inj.MalformProb {
		return body
	}
	switch inj.rng.Intn(4) {
	case 0: // truncate mid-object
		cut := 1 + inj.rng.Intn(len(body))
		return append([]byte(nil), body[:cut]...)
	case 1: // non-finite rate: JSON has no NaN, so this is a parse error
		return []byte(`{"client":"chaos","rate":NaN}`)
	case 2: // stamp a NUL somewhere: invalid at every JSON position
		out := append([]byte(nil), body...)
		out[inj.rng.Intn(len(out))] = 0x00
		return out
	default: // leading garbage before the object
		return append([]byte("!!"), body...)
	}
}

// SkewDeadline possibly replaces a request's deadline budget with a
// skewed one (deadline-skew): either negative — a client whose clock
// ran ahead, which the service must answer with a typed deadline
// rejection — or 1ms, which forces the shed-on-head-age path.
func (inj *ServiceInjector) SkewDeadline(ms int64) int64 {
	if inj.SkewProb <= 0 || inj.rng.Float64() >= inj.SkewProb {
		return ms
	}
	if inj.rng.Intn(2) == 0 {
		return -1 - int64(inj.rng.Intn(5000)) // clock ran ahead: already expired
	}
	return 1 // nearly no budget: expires while queued
}
