package chaos

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"greednet/internal/alloc"
	"greednet/internal/core"
	"greednet/internal/des"
	"greednet/internal/game"
	"greednet/internal/utility"
)

// TestPassThroughWhenQuiet pins the all-knobs-zero contract bitwise.
func TestPassThroughWhenQuiet(t *testing.T) {
	inner := alloc.FairShare{}
	wrapped := &Allocation{Inner: inner}
	r := []float64{0.2, 0.3, 0.1}
	for trial := 0; trial < 3; trial++ { // repeated calls must stay quiet too
		want := inner.Congestion(r)
		got := wrapped.Congestion(r)
		for i := range want {
			if got[i] != want[i] { // pass-through must be exact, not approximate
				t.Fatalf("trial %d: Congestion[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
		for i := range r {
			if wrapped.CongestionOf(r, i) != inner.CongestionOf(r, i) { // pass-through must be exact, not approximate
				t.Fatalf("trial %d: CongestionOf(%d) differs", trial, i)
			}
		}
	}
}

// TestNaNInjectionIsRejected proves the Newton solver's finite-region
// guard fires on a NaN-poisoned congestion function instead of iterating
// on garbage.
func TestNaNInjectionIsRejected(t *testing.T) {
	us := utility.Identical(utility.NewLinear(1, 0.25), 2)
	poisoned := &Allocation{Inner: alloc.FairShare{}, NaNAfter: 3}
	_, err := game.SolveNashNewton(poisoned, us, []float64{0.1, 0.1}, 0, 0)
	if err == nil {
		t.Fatal("NaN-poisoned allocation must not solve cleanly")
	}
	if !strings.Contains(err.Error(), "finite") {
		t.Errorf("want the finite-region rejection, got: %v", err)
	}
}

// TestNaNInjectionFires sanity-checks the injector itself.
func TestNaNInjectionFires(t *testing.T) {
	a := &Allocation{Inner: alloc.FairShare{}, NaNAfter: 2}
	r := []float64{0.2, 0.3}
	if c := a.Congestion(r); math.IsNaN(c[0]) {
		t.Fatal("call 1 should still be clean")
	}
	if c := a.Congestion(r); math.IsNaN(c[0]) {
		t.Fatal("call 2 should still be clean")
	}
	if c := a.Congestion(r); !math.IsNaN(c[0]) {
		t.Fatal("call 3 should be poisoned")
	}
}

// TestOscillationPreventsConvergence proves a never-settling congestion
// target drives the best-response solver to its MaxIter budget with
// Converged == false — the "gave up by iteration count" path, which must
// stay distinguishable from cancellation.
func TestOscillationPreventsConvergence(t *testing.T) {
	us := utility.Identical(utility.NewLinear(1, 0.25), 2)
	wobble := &Allocation{Inner: alloc.FairShare{}, Oscillate: 0.3}
	res, err := game.SolveNash(wobble, us, []float64{0.1, 0.1}, game.NashOptions{MaxIter: 20, Tol: 1e-12})
	if err != nil {
		t.Fatalf("oscillation is not an error condition, got: %v", err)
	}
	if res.Converged {
		t.Fatal("a never-settling target must not report convergence")
	}
	if res.Iters < 20 {
		t.Errorf("Iters = %d, want the full MaxIter budget spent", res.Iters)
	}
}

// TestDivergenceGrowsReports sanity-checks the Diverge knob: successive
// reports at the same point must strictly grow.
func TestDivergenceGrowsReports(t *testing.T) {
	a := &Allocation{Inner: alloc.FairShare{}, Diverge: 0.5}
	r := []float64{0.2, 0.3}
	prev := a.CongestionOf(r, 0)
	for k := 0; k < 5; k++ {
		next := a.CongestionOf(r, 0)
		if next <= prev {
			t.Fatalf("call %d: report %v did not grow past %v", k+2, next, prev)
		}
		prev = next
	}
}

// TestSlowAllocationTriggersDeadline proves the deadline path end to end:
// a solver whose congestion oracle sleeps must return core.ErrDeadline
// under a short context, not run to completion.
func TestSlowAllocationTriggersDeadline(t *testing.T) {
	us := utility.Identical(utility.NewLinear(1, 0.25), 2)
	slow := &SlowAllocation{Inner: alloc.FairShare{}, Delay: 2 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := game.SolveNashCtx(ctx, slow, us, []float64{0.1, 0.1}, game.NashOptions{MaxIter: 1 << 20, Tol: 0})
	if !errors.Is(err, core.ErrDeadline) {
		t.Fatalf("got %v, want core.ErrDeadline", err)
	}
}

// TestChaosDisciplineConservesWork proves the swap wrapper degrades
// per-user order without breaking the work-conservation law the DES
// validates: the total queue still matches g(Σr) = Σr/(1−Σr).
func TestChaosDisciplineConservesWork(t *testing.T) {
	rates := []float64{0.25, 0.25}
	res, err := des.Run(des.Config{
		Rates:      rates,
		Discipline: &Discipline{Inner: &des.FIFO{}, Seed: 11, SwapEvery: 3},
		Horizon:    5e4,
		Seed:       42,
	})
	if err != nil {
		t.Fatalf("chaos run failed: %v", err)
	}
	want := 0.5 / (1 - 0.5)
	if math.Abs(res.TotalAvgQueue-want) > 0.1 {
		t.Errorf("TotalAvgQueue = %v, want ≈ %v (work conservation must survive the swaps)", res.TotalAvgQueue, want)
	}
}

// TestChaosDisciplineDeterministic pins reproducibility: same seeds, same
// faults, same statistics.
func TestChaosDisciplineDeterministic(t *testing.T) {
	run := func() des.Result {
		res, err := des.Run(des.Config{
			Rates:      []float64{0.2, 0.3},
			Discipline: &Discipline{Inner: &des.FIFO{}, Seed: 7, SwapEvery: 2},
			Horizon:    1e4,
			Seed:       13,
		})
		if err != nil {
			t.Fatalf("run failed: %v", err)
		}
		return res
	}
	a, b := run(), run()
	for i := range a.AvgQueue {
		if a.AvgQueue[i] != b.AvgQueue[i] { // identical seeds must reproduce identical fault sequences bitwise
			t.Fatalf("AvgQueue[%d]: %v vs %v", i, a.AvgQueue[i], b.AvgQueue[i])
		}
	}
}
