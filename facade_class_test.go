package greednet_test

import (
	"context"
	"math"
	"testing"

	"greednet"
)

// TestFacadeClassSolve drives the class-aggregated layer end to end
// through the public facade: aggregate a per-user profile, solve the
// class game, and check it against the per-user solver it compresses.
func TestFacadeClassSolve(t *testing.T) {
	us := greednet.Profile{
		greednet.NewLinearUtility(1, 0.2),
		greednet.NewLinearUtility(1, 0.2),
		greednet.NewLinearUtility(1, 0.5),
	}
	r0 := []float64{0.1, 0.1, 0.1}
	cg, classOf, err := greednet.AggregateClasses(us, r0)
	if err != nil {
		t.Fatal(err)
	}
	if cg.K() != 2 || cg.N() != 3 || len(classOf) != 3 {
		t.Fatalf("K=%d N=%d classOf=%v", cg.K(), cg.N(), classOf)
	}
	fs := greednet.NewFairShare()
	cres, err := greednet.SolveNashClass(fs, cg, greednet.ClassNashOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !cres.Converged {
		t.Fatal("class solve did not converge")
	}
	ures, err := greednet.SolveNash(fs, us, r0, greednet.NashOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range classOf {
		if math.Abs(cres.R[j]-ures.R[i]) > 1e-6 {
			t.Errorf("user %d (class %d): class rate %v vs per-user %v", i, j, cres.R[j], ures.R[i])
		}
	}
}

// TestFacadeFluidMatchesLargeN checks the facade's fluid solver against
// a large finite-N class solve: ŷ_j must approximate N·r_j.
func TestFacadeFluidMatchesLargeN(t *testing.T) {
	const n = 1 << 20
	classes := []greednet.Class{
		{U: greednet.NewLinearUtility(1, 0.2), Rate: 0.4 / n, Count: n / 2},
		{U: greednet.NewLinearUtility(1, 0.5), Rate: 0.4 / n, Count: n / 2},
	}
	cg, err := greednet.NewClassGame(classes)
	if err != nil {
		t.Fatal(err)
	}
	fs := greednet.NewFairShare()
	fr, err := greednet.SolveNashFluid(context.Background(), fs, cg, greednet.ClassNashOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !fr.Converged {
		t.Fatal("fluid solve did not converge")
	}
	cres, err := greednet.SolveNashClass(fs, cg, greednet.ClassNashOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for j := range cg.Classes {
		scaled := float64(n) * cres.R[j]
		if math.Abs(fr.Y[j]-scaled) > 1e-3 {
			t.Errorf("class %d: fluid ŷ=%v vs N·r=%v", j, fr.Y[j], scaled)
		}
	}
	// Domain errors surface through the facade's typed sentinels.
	bad, err := greednet.NewClassGame([]greednet.Class{
		{U: greednet.LogUtility{W: 0.3, Gamma: 1}, Rate: 0.1, Count: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := greednet.SolveNashFluid(context.Background(), fs, bad, greednet.ClassNashOptions{}); err == nil {
		t.Error("fluid solve of a log-utility class should fail with ErrFluidUtility")
	}
}
